"""Micro + macro performance benchmarks behind ``repro perf``.

Six benchmarks, each reporting wall-clock and a derived throughput:

* **synthesis micro** -- trace -> DAG synthesis on a merged multi-run
  trace (Sec. V strategy 1, the O(P·N) pathology the ``TraceIndex``
  layer removes) and on a single-run trace, measured against the frozen
  pre-change pipeline in :mod:`repro._legacy`;
* **sim micro** -- full-stack traced simulation events/sec, new kernel /
  scheduler / tracer stack vs the frozen ``repro._legacy`` stack
  (conservative: layers shared by both stacks carry this PR's
  optimizations too);
* **Table II macro** -- wall-clock of the reduced-scale Table II batch
  (``run_batch`` of ``avp-interference``).  When ``baseline_src`` points
  at a pre-change checkout's ``src`` directory, the identical workload
  is timed in a subprocess against that tree -- the honest
  pre-change-code comparison recorded in ``BENCH_2.json``;
* **jobs scaling macro** -- ``run_batch --jobs`` parallel efficiency;
* **store** -- the binary trace store: segment encode/decode MB and
  Mev/s against the legacy gzip-JSON storage, plus store-backed
  synthesis (``synthesize_from_store``) inline overhead and PID-sharded
  scaling.  Segments are written in the current format (v3, per-section
  compression); ``format_v1`` / ``format_v2`` sub-sections re-measure
  the same workload against the older formats so each generation's
  gains stay visible run over run, and a ``selective_read`` sub-section
  reports how few section bytes the v3 layout inflates for partial
  reads (Alg. 1 walk only, sched/wakeup analysis only, PID subsets) via
  the readers' ``bytes_inflated`` counter;
* **service ingest** -- the live synthesis service's incremental
  maintenance: segments committed one at a time into a
  :class:`~repro.service.live.LiveSynthesizer` (extend-in-place + model
  per commit) against re-running a from-scratch
  ``synthesize_from_store`` at every commit point -- the win the
  ``repro serve`` worker banks on every arrival.

Speedup ratios (new vs frozen legacy, measured in the same process) are
machine-independent and are what the CI regression gate compares;
absolute events/sec document the trajectory on the machine that wrote
the JSON.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .._legacy.extraction import extract_all as legacy_extract_all
from .._legacy.tracing.session import TracingSession as LegacyTracingSession
from .._legacy.world import World as LegacyWorld
from ..core.pipeline import synthesize_from_trace
from ..core.synthesis import synthesize_dag
from ..experiments.batch import BatchConfig, run_batch
from ..experiments.runner import RunConfig
from ..scenarios.registry import build_scenario_spec
from ..sim.kernel import SEC
from ..tracing.session import Trace, TracingSession
from ..world import World

#: Scenario used by every benchmark (the Table II deployment).
BENCH_SCENARIO = "avp-interference"


@dataclass(frozen=True)
class BenchScale:
    """Workload sizes for one harness run."""

    name: str
    #: Runs merged for the multi-run synthesis microbenchmark.
    synthesis_runs: int
    #: Simulated seconds per synthesis-trace run.
    synthesis_duration_s: int
    #: Simulated seconds for the sim microbenchmark.
    sim_duration_s: int
    #: Runs / simulated seconds of the reduced Table II macro batch.
    batch_runs: int
    batch_duration_s: int
    #: Workload and worker count of the jobs-scaling macro benchmark
    #: (larger than the wall-clock batch so pool startup amortizes).
    scaling_runs: int
    scaling_duration_s: int
    scaling_jobs: int
    #: Best-of repetitions per measurement.
    reps: int


SCALES: Dict[str, BenchScale] = {
    "smoke": BenchScale(
        name="smoke",
        synthesis_runs=6,
        synthesis_duration_s=3,
        sim_duration_s=4,
        batch_runs=4,
        batch_duration_s=3,
        scaling_runs=4,
        scaling_duration_s=3,
        scaling_jobs=2,
        reps=2,
    ),
    "default": BenchScale(
        name="default",
        synthesis_runs=16,
        synthesis_duration_s=10,
        sim_duration_s=10,
        batch_runs=6,
        batch_duration_s=5,
        scaling_runs=8,
        scaling_duration_s=10,
        scaling_jobs=2,
        reps=3,
    ),
    "full": BenchScale(
        name="full",
        synthesis_runs=25,
        synthesis_duration_s=10,
        sim_duration_s=20,
        batch_runs=12,
        batch_duration_s=10,
        scaling_runs=16,
        scaling_duration_s=10,
        scaling_jobs=4,
        reps=5,
    ),
}


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _simulate(
    run_index: int,
    duration_ns: int,
    world_cls=World,
    session_cls=TracingSession,
) -> Trace:
    """One traced ``avp-interference`` run on the given substrate."""
    spec = build_scenario_spec(BENCH_SCENARIO, run_index=run_index, runs=50)
    config = RunConfig(duration_ns=duration_ns, num_cpus=spec.num_cpus)
    world = world_cls(
        num_cpus=config.num_cpus,
        seed=config.seed_for(run_index),
        timeslice=config.timeslice_ns,
        dds_latency_ns=config.dds_latency_ns,
        start_time_ns=config.time_base_for(run_index),
        first_pid=config.pid_base_for(run_index),
    )
    spec.build(world)
    session = session_cls(world, kernel_filter=config.kernel_filter)
    session.start_init()
    world.launch()
    world.run(for_ns=config.warmup_ns)
    session.stop_init()
    session.start_runtime()
    world.run(for_ns=duration_ns)
    session.stop_runtime()
    return session.trace()


# ---------------------------------------------------------------------------
# Micro: synthesis
# ---------------------------------------------------------------------------

def bench_synthesis(scale: BenchScale) -> Dict[str, Any]:
    """Trace -> DAG throughput, optimized pipeline vs frozen legacy."""
    duration_ns = scale.synthesis_duration_s * SEC
    traces = [
        _simulate(i, duration_ns) for i in range(scale.synthesis_runs)
    ]
    merged = Trace.merge(traces)
    single = traces[0]

    def events_of(trace: Trace) -> int:
        return len(trace.ros_events) + len(trace.sched_events)

    result: Dict[str, Any] = {}
    for label, trace in (("merged", merged), ("single", single)):
        new_s = _best_of(lambda t=trace: synthesize_from_trace(t), scale.reps)
        legacy_s = _best_of(
            lambda t=trace: synthesize_dag(legacy_extract_all(t)), scale.reps
        )
        result[label] = {
            "events": events_of(trace),
            "pids": len(trace.pid_map),
            "new_s": round(new_s, 6),
            "legacy_s": round(legacy_s, 6),
            "speedup": round(legacy_s / new_s, 3),
            "events_per_sec": round(events_of(trace) / new_s),
        }
    result["runs_merged"] = scale.synthesis_runs
    return result


# ---------------------------------------------------------------------------
# Micro: simulation
# ---------------------------------------------------------------------------

def _count_calls(fn) -> int:
    """Python function calls made by ``fn()``, via ``sys.setprofile``.

    Counts ``call`` events only (C calls excluded): the flattened
    dispatch work of this PR removes Python frames, and that is the
    machine-independent quantity worth pinning.  Run separately from the
    timed reps -- the profile hook itself costs more than the workload.
    """
    calls = 0

    def tracer(frame, event, arg):
        nonlocal calls
        if event == "call":
            calls += 1

    sys.setprofile(tracer)
    try:
        fn()
    finally:
        sys.setprofile(None)
    return calls


def bench_sim(scale: BenchScale) -> Dict[str, Any]:
    """Traced-simulation wall-clock, new stack vs frozen legacy stack.

    Both stacks replay the identical workload and -- pinned by
    ``tests/test_perf_equivalence.py`` -- emit byte-identical traces, so
    one event count serves as the denominator for both sides'
    calls-per-event figures.
    """
    duration_ns = scale.sim_duration_s * SEC
    new_s = _best_of(lambda: _simulate(0, duration_ns), scale.reps)
    legacy_s = _best_of(
        lambda: _simulate(0, duration_ns, LegacyWorld, LegacyTracingSession),
        scale.reps,
    )
    trace = _simulate(0, duration_ns)
    events = len(trace.ros_events) + len(trace.sched_events)
    new_calls = _count_calls(lambda: _simulate(0, duration_ns))
    legacy_calls = _count_calls(
        lambda: _simulate(0, duration_ns, LegacyWorld, LegacyTracingSession)
    )
    return {
        "sim_seconds": scale.sim_duration_s,
        "trace_events": events,
        "new_s": round(new_s, 6),
        "legacy_s": round(legacy_s, 6),
        "speedup_vs_legacy": round(legacy_s / new_s, 3),
        "events_per_sec": round(events / new_s),
        "python_calls": new_calls,
        "legacy_python_calls": legacy_calls,
        "calls_per_event": round(new_calls / max(1, events), 2),
        "legacy_calls_per_event": round(legacy_calls / max(1, events), 2),
        "call_reduction_vs_legacy": round(legacy_calls / max(1, new_calls), 3),
    }


# ---------------------------------------------------------------------------
# Macro: reduced Table II batch
# ---------------------------------------------------------------------------

_BASELINE_SNIPPET = """
import sys, time
from repro.experiments.batch import BatchConfig, run_batch
from repro.sim.kernel import SEC
runs, dur, reps = int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3])
best = float("inf")
for _ in range(reps):
    t0 = time.perf_counter()
    run_batch("avp-interference", runs=runs, jobs=1,
              config=BatchConfig(duration_ns=dur * SEC, num_cpus=4,
                                 base_seed=2000, collect_traces=False,
                                 scenario_params={"syn_load_range": (0.5, 2.5)}))
    best = min(best, time.perf_counter() - t0)
print(best)
"""


def _batch_once(runs: int, duration_s: int, jobs: int) -> None:
    run_batch(
        BENCH_SCENARIO,
        runs=runs,
        jobs=jobs,
        config=BatchConfig(
            duration_ns=duration_s * SEC,
            num_cpus=4,
            base_seed=2000,
            collect_traces=False,
            scenario_params={"syn_load_range": (0.5, 2.5)},
        ),
    )


def measure_baseline_batch(
    baseline_src: str, runs: int, duration_s: int, reps: int
) -> float:
    """Time the identical Table II batch against a pre-change checkout.

    Runs the workload in a subprocess with ``PYTHONPATH`` pointing at
    ``baseline_src`` (the old tree's ``src``).  The batch API is part of
    the pre-change code, so the measured path is exactly what this PR
    replaced.
    """
    completed = subprocess.run(
        [sys.executable, "-c", _BASELINE_SNIPPET,
         str(runs), str(duration_s), str(reps)],
        env={"PYTHONPATH": baseline_src, "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        check=True,
    )
    return float(completed.stdout.strip())


def bench_table2_batch(
    scale: BenchScale, baseline_src: Optional[str] = None
) -> Dict[str, Any]:
    """Wall-clock of the reduced-scale Table II batch."""
    runs, duration_s = scale.batch_runs, scale.batch_duration_s
    new_s = _best_of(lambda: _batch_once(runs, duration_s, jobs=1), scale.reps)
    result: Dict[str, Any] = {
        "runs": runs,
        "duration_s": duration_s,
        "jobs": 1,
        "new_s": round(new_s, 6),
    }
    if baseline_src is not None:
        baseline_s = measure_baseline_batch(
            baseline_src, runs, duration_s, scale.reps
        )
        result["baseline_s"] = round(baseline_s, 6)
        result["speedup"] = round(baseline_s / new_s, 3)
    return result


def bench_jobs_scaling(scale: BenchScale) -> Dict[str, Any]:
    """Parallel efficiency of ``run_batch --jobs``."""
    runs, duration_s = scale.scaling_runs, scale.scaling_duration_s
    jobs = scale.scaling_jobs
    serial_s = _best_of(lambda: _batch_once(runs, duration_s, 1), scale.reps)
    parallel_s = _best_of(lambda: _batch_once(runs, duration_s, jobs), scale.reps)
    # With fewer usable CPUs than workers, the ideal speedup is bounded
    # by the CPU count -- report it so efficiency reads correctly on
    # constrained machines (a 1-CPU container cannot beat 1.0x).
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    return {
        "runs": runs,
        "duration_s": duration_s,
        "jobs": jobs,
        "available_cpus": cpus,
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "speedup": round(serial_s / parallel_s, 3),
        "efficiency": round(serial_s / (jobs * parallel_s), 3),
    }


# ---------------------------------------------------------------------------
# Store: binary segments vs gzip-JSON + sharded synthesis
# ---------------------------------------------------------------------------

def _measure_selective_read(
    segment_reader, store_trace_index, paths: List[str], scale: BenchScale
) -> Dict[str, Any]:
    """Section-selective I/O of the v3 layout, via ``bytes_inflated``.

    Each access pattern opens fresh readers (section caches are
    per-reader) and reports how many raw bytes were actually run
    through zlib -- deterministic for a fixed workload, so the derived
    fractions transfer across machines like the speedup ratios do.
    """

    def inflated(consume) -> int:
        total = 0
        for path in paths:
            reader = segment_reader.open(path)
            consume(reader)
            total += reader.bytes_inflated
        return total

    def drain_walk(reader) -> None:
        for _ in reader.walk_rows(0):
            pass

    def drain_analysis(reader) -> None:
        reader.sched_pid_columns()
        for _ in reader.wakeup_ts_pid_rows():
            pass

    body_bytes = 0
    all_pids: set = set()
    for path in paths:
        reader = segment_reader.open(path)
        body_bytes += reader.body_bytes
        all_pids.update(reader.pids())
    subset = sorted(all_pids)[: max(1, len(all_pids) // 4)]

    full_bytes = inflated(lambda r: r.to_trace())
    open_bytes = inflated(lambda r: None)
    walk_bytes = inflated(drain_walk)
    analysis_bytes = inflated(drain_analysis)

    subset_readers = [segment_reader.open(p) for p in paths]
    store_trace_index(subset_readers, wanted_pids=subset)
    pid_subset_bytes = sum(r.bytes_inflated for r in subset_readers)

    walk_s = _best_of(
        lambda: [drain_walk(segment_reader.open(p)) for p in paths],
        scale.reps,
    )
    return {
        "body_bytes": body_bytes,
        "full_decode_bytes": full_bytes,
        "open_bytes": open_bytes,
        "walk_bytes": walk_bytes,
        "analysis_bytes": analysis_bytes,
        "pid_subset": len(subset),
        "pids": len(all_pids),
        "pid_subset_bytes": pid_subset_bytes,
        "walk_fraction": round(walk_bytes / max(1, full_bytes), 3),
        "analysis_fraction": round(analysis_bytes / max(1, full_bytes), 3),
        # Gate-friendly ratio (higher is better): how much less a walk
        # inflates than a full decode.
        "walk_inflate_ratio": round(full_bytes / max(1, walk_bytes), 3),
        "walk_s": round(walk_s, 6),
    }


def bench_store(scale: BenchScale) -> Dict[str, Any]:
    """Trace-store throughput: encode/decode vs the legacy gzip-JSON
    storage, and store-backed synthesis inline + sharded."""
    import tempfile

    from ..store import (
        SegmentReader,
        StoreTraceIndex,
        TraceStore,
        synthesize_from_store,
        write_segment,
    )
    from ..tracing.storage import TRACE_SUFFIX, load_trace, save_trace

    duration_ns = scale.batch_duration_s * SEC
    runs = scale.batch_runs
    traces = [_simulate(i, duration_ns) for i in range(runs)]
    events = sum(
        len(t.ros_events) + len(t.sched_events) + len(t.wakeup_events)
        for t in traces
    )
    merged = Trace.merge(traces)

    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as tmp:
        bin_dir = os.path.join(tmp, "bin")
        v1_dir = os.path.join(tmp, "v1")
        v2_dir = os.path.join(tmp, "v2")
        json_dir = os.path.join(tmp, "json")
        os.makedirs(bin_dir)
        os.makedirs(v1_dir)
        os.makedirs(v2_dir)
        os.makedirs(json_dir)
        bin_paths = [
            os.path.join(bin_dir, f"run{i:03d}.trace.bin") for i in range(runs)
        ]
        v1_paths = [
            os.path.join(v1_dir, f"run{i:03d}.trace.bin") for i in range(runs)
        ]
        v2_paths = [
            os.path.join(v2_dir, f"run{i:03d}.trace.bin") for i in range(runs)
        ]
        json_paths = [
            os.path.join(json_dir, f"run{i:03d}{TRACE_SUFFIX}") for i in range(runs)
        ]

        def encode_binary() -> None:
            for trace, path in zip(traces, bin_paths):
                write_segment(trace, path)

        def encode_v1() -> None:
            for trace, path in zip(traces, v1_paths):
                write_segment(trace, path, format_version=1)

        def encode_v2() -> None:
            for trace, path in zip(traces, v2_paths):
                write_segment(trace, path, format_version=2)

        def encode_json() -> None:
            for trace, path in zip(traces, json_paths):
                save_trace(trace, path)

        encode_bin_s = _best_of(encode_binary, scale.reps)
        encode_v1_s = _best_of(encode_v1, scale.reps)
        encode_v2_s = _best_of(encode_v2, scale.reps)
        encode_json_s = _best_of(encode_json, scale.reps)
        bin_bytes = sum(os.path.getsize(p) for p in bin_paths)
        v1_bytes = sum(os.path.getsize(p) for p in v1_paths)
        v2_bytes = sum(os.path.getsize(p) for p in v2_paths)
        json_bytes = sum(os.path.getsize(p) for p in json_paths)

        decode_bin_s = _best_of(
            lambda: [SegmentReader.open(p).to_trace() for p in bin_paths],
            scale.reps,
        )
        decode_v1_s = _best_of(
            lambda: [SegmentReader.open(p).to_trace() for p in v1_paths],
            scale.reps,
        )
        decode_v2_s = _best_of(
            lambda: [SegmentReader.open(p).to_trace() for p in v2_paths],
            scale.reps,
        )
        decode_json_s = _best_of(
            lambda: [load_trace(p) for p in json_paths], scale.reps
        )

        store = TraceStore(bin_dir)
        v1_store = TraceStore(v1_dir)
        v2_store = TraceStore(v2_dir)
        inline_s = _best_of(lambda: synthesize_from_trace(merged), scale.reps)
        store_serial_s = _best_of(
            lambda: synthesize_from_store(store, jobs=1), scale.reps
        )
        store_v1_serial_s = _best_of(
            lambda: synthesize_from_store(v1_store, jobs=1), scale.reps
        )
        store_v2_serial_s = _best_of(
            lambda: synthesize_from_store(v2_store, jobs=1), scale.reps
        )
        jobs = scale.scaling_jobs
        store_sharded_s = _best_of(
            lambda: synthesize_from_store(store, jobs=jobs), scale.reps
        )
        selective = _measure_selective_read(
            SegmentReader, StoreTraceIndex, bin_paths, scale
        )

    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    return {
        "runs": runs,
        "duration_s": scale.batch_duration_s,
        "events": events,
        "format_version": 3,
        # The two previous segment formats on the identical workload:
        # how much the typed payload columns (v2) and the per-section
        # compression + vectorized walk (v3) buy, re-measured every run.
        "format_v1": {
            "encode_s": round(encode_v1_s, 6),
            "decode_s": round(decode_v1_s, 6),
            "bytes": v1_bytes,
            "synthesis_serial_s": round(store_v1_serial_s, 6),
            "v2_bytes_ratio": round(v2_bytes / max(1, v1_bytes), 3),
            "v2_decode_speedup": round(decode_v1_s / decode_v2_s, 3),
            "v2_synthesis_speedup": round(
                store_v1_serial_s / store_v2_serial_s, 3
            ),
        },
        "format_v2": {
            "encode_s": round(encode_v2_s, 6),
            "decode_s": round(decode_v2_s, 6),
            "bytes": v2_bytes,
            "synthesis_serial_s": round(store_v2_serial_s, 6),
            "v3_bytes_ratio": round(bin_bytes / max(1, v2_bytes), 3),
            "v3_decode_speedup": round(decode_v2_s / decode_bin_s, 3),
            "v3_synthesis_speedup": round(
                store_v2_serial_s / store_serial_s, 3
            ),
        },
        "selective_read": selective,
        "encode": {
            "binary_s": round(encode_bin_s, 6),
            "json_s": round(encode_json_s, 6),
            "binary_bytes": bin_bytes,
            "json_bytes": json_bytes,
            "binary_mb_per_s": round(bin_bytes / encode_bin_s / 1e6, 3),
            "bytes_per_event": round(bin_bytes / max(1, events), 2),
            "speedup_vs_json": round(encode_json_s / encode_bin_s, 3),
        },
        "decode": {
            "binary_s": round(decode_bin_s, 6),
            "json_s": round(decode_json_s, 6),
            "binary_mb_per_s": round(bin_bytes / decode_bin_s / 1e6, 3),
            "events_per_sec": round(events / decode_bin_s),
            "speedup_vs_json": round(decode_json_s / decode_bin_s, 3),
        },
        "synthesis": {
            "inline_s": round(inline_s, 6),
            "store_serial_s": round(store_serial_s, 6),
            "store_overhead": round(store_serial_s / inline_s, 3),
            # The gate-friendly inverse (higher is better, like every
            # other REGRESSION_METRICS ratio): how close store-backed
            # synthesis runs to the in-memory pipeline.
            "speedup_vs_inline": round(inline_s / store_serial_s, 3),
            "store_sharded_s": round(store_sharded_s, 6),
            "jobs": jobs,
            "available_cpus": cpus,
            "sharded_speedup": round(store_serial_s / store_sharded_s, 3),
        },
    }


# ---------------------------------------------------------------------------
# Service: incremental ingest vs per-commit rebuild
# ---------------------------------------------------------------------------

def bench_service_ingest(scale: BenchScale) -> Dict[str, Any]:
    """Live-service maintenance cost per arriving segment.

    Both sides commit the identical pre-encoded segments one at a time
    and produce a model after every commit; the incremental side folds
    each arrival into the maintained :class:`LiveStoreIndex`, the
    rebuild side re-runs ``synthesize_from_store`` from scratch -- what
    a query-after-every-arrival service would cost without the
    incremental layer.  Encoding and simulation stay outside the timed
    regions.
    """
    import tempfile

    from ..service.live import LiveSynthesizer, ServiceCounters
    from ..store import TraceStore, synthesize_from_store
    from ..store.writer import encode_trace

    duration_ns = scale.batch_duration_s * SEC
    runs = scale.batch_runs
    traces = [_simulate(i, duration_ns) for i in range(runs)]
    events = sum(
        len(t.ros_events) + len(t.sched_events) + len(t.wakeup_events)
        for t in traces
    )
    blobs = [encode_trace(trace) for trace in traces]

    def deliver(directory: str, index: int) -> None:
        path = os.path.join(directory, f"run{index:03d}.trace.bin")
        with open(path, "wb") as handle:
            handle.write(blobs[index])

    def incremental(counters: Optional[ServiceCounters] = None) -> None:
        with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
            live = LiveSynthesizer(TraceStore.create(tmp), counters=counters)
            for index in range(runs):
                deliver(tmp, index)
                live.refresh()
                live.model()

    def rebuild_every_commit() -> None:
        with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
            for index in range(runs):
                deliver(tmp, index)
                synthesize_from_store(TraceStore(tmp), jobs=1)

    incremental_s = _best_of(incremental, scale.reps)
    rebuild_s = _best_of(rebuild_every_commit, scale.reps)
    counters = ServiceCounters()
    incremental(counters)  # one instrumented pass for the counters

    return {
        "runs": runs,
        "duration_s": scale.batch_duration_s,
        "events": events,
        "incremental_s": round(incremental_s, 6),
        "rebuild_s": round(rebuild_s, 6),
        "speedup_vs_rebuild": round(rebuild_s / incremental_s, 3),
        "per_segment_ms": round(incremental_s / runs * 1000, 3),
        "extends": counters.extends,
        "rebuilds": counters.rebuilds,
        "saved_s": round(counters.saved_s, 6),
    }


# ---------------------------------------------------------------------------
# Profiling: repro perf --profile SECTION
# ---------------------------------------------------------------------------

#: Sections accepted by :func:`profile_section` and the CLI's
#: ``--profile`` flag, with what each one profiles.
PROFILE_SECTIONS: Dict[str, str] = {
    "sim": "one traced simulation run on the new stack",
    "sim-legacy": "one traced simulation run on the frozen legacy stack",
    "synthesis": "trace -> DAG synthesis of a merged multi-run trace",
    "batch": "the reduced Table II serial batch",
}


def profile_section(
    section: str,
    scale_name: str = "default",
    out: Optional[str] = None,
    top: int = 25,
) -> str:
    """cProfile one benchmark section and return a top-``top`` report.

    Setup work (building the traces a synthesis profile consumes) runs
    outside the profiled region, so the report shows only the section's
    own frames.  When ``out`` is given the raw stats are dumped there as
    a ``.pstats`` artifact -- loadable with ``pstats.Stats(out)`` or any
    flamegraph converter -- alongside the returned text.
    """
    import cProfile
    import io
    import pstats

    if section not in PROFILE_SECTIONS:
        raise ValueError(
            f"unknown profile section {section!r}; "
            f"choose from {sorted(PROFILE_SECTIONS)}"
        )
    scale = SCALES[scale_name]

    if section == "sim":
        target = lambda: _simulate(0, scale.sim_duration_s * SEC)
    elif section == "sim-legacy":
        target = lambda: _simulate(
            0, scale.sim_duration_s * SEC, LegacyWorld, LegacyTracingSession
        )
    elif section == "synthesis":
        duration_ns = scale.synthesis_duration_s * SEC
        merged = Trace.merge(
            [_simulate(i, duration_ns) for i in range(scale.synthesis_runs)]
        )
        target = lambda: synthesize_from_trace(merged)
    else:  # batch
        target = lambda: _batch_once(
            scale.batch_runs, scale.batch_duration_s, jobs=1
        )

    profiler = cProfile.Profile()
    profiler.enable()
    target()
    profiler.disable()

    if out is not None:
        profiler.dump_stats(out)
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("tottime").print_stats(top)
    header = (
        f"profile section={section} scale={scale_name}"
        + (f" pstats={out}" if out else "")
        + f"\n{PROFILE_SECTIONS[section]}\n"
    )
    return header + stream.getvalue()


# ---------------------------------------------------------------------------
# Suite + regression gate
# ---------------------------------------------------------------------------

def run_perf_suite(
    scale_name: str = "default",
    baseline_src: Optional[str] = None,
    baseline_ref: Optional[str] = None,
) -> Dict[str, Any]:
    """Run every benchmark and assemble the ``BENCH_*.json`` payload."""
    scale = SCALES[scale_name]
    payload: Dict[str, Any] = {
        "meta": {
            "benchmark": "perf",
            "scenario": BENCH_SCENARIO,
            "scale": scale.name,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "micro": {
            "synthesis": bench_synthesis(scale),
            "sim": bench_sim(scale),
        },
        "macro": {
            "table2_batch": bench_table2_batch(scale, baseline_src=baseline_src),
            "jobs_scaling": bench_jobs_scaling(scale),
        },
        "store": bench_store(scale),
        "service": {
            "ingest": bench_service_ingest(scale),
        },
    }
    if baseline_ref is not None:
        payload["meta"]["baseline_ref"] = baseline_ref
    return payload


#: In-process speedup metrics compared by the CI regression gate.  These
#: are ratios of two measurements taken on the same machine in the same
#: process, so they transfer across machines (unlike events/sec).
REGRESSION_METRICS = (
    ("micro.synthesis.merged.speedup", "merged-trace synthesis speedup"),
    ("micro.synthesis.single.speedup", "single-trace synthesis speedup"),
    ("micro.sim.speedup_vs_legacy", "sim stack speedup"),
    # Deterministic Python-call ratio, not a timing: the flattened
    # dispatch must keep doing several times fewer frames per trace
    # event than the legacy stack.
    ("micro.sim.call_reduction_vs_legacy", "sim stack call reduction"),
    ("store.encode.speedup_vs_json", "binary store encode speedup"),
    ("store.decode.speedup_vs_json", "binary store decode speedup"),
    ("store.synthesis.speedup_vs_inline", "store synthesis vs inline ratio"),
    # Deterministic bytes ratio, not a timing: v3 selective reads must
    # keep inflating far fewer section bytes than a full decode.
    ("store.selective_read.walk_inflate_ratio", "selective walk read inflation ratio"),
    ("service.ingest.speedup_vs_rebuild", "incremental service ingest vs per-commit rebuild"),
)


def _dig(payload: Dict[str, Any], dotted: str) -> Optional[float]:
    node: Any = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def check_regression(
    current: Dict[str, Any], baseline: Dict[str, Any], factor: float = 2.0
) -> List[str]:
    """Compare speedup ratios against the committed baseline.

    Returns human-readable failure strings for every metric that
    regressed by more than ``factor`` (current worse than baseline /
    factor).  Absolute events/sec are machine-dependent and excluded.
    """
    failures: List[str] = []
    for dotted, label in REGRESSION_METRICS:
        now = _dig(current, dotted)
        then = _dig(baseline, dotted)
        if now is None or then is None:
            # A missing metric must fail loudly: silently skipping it
            # would let a schema rename hollow out the CI gate.
            missing = "current run" if now is None else "committed baseline"
            failures.append(f"{label}: metric {dotted!r} missing from {missing}")
            continue
        floor = then / factor
        if now < floor:
            failures.append(
                f"{label} regressed: {now:.2f}x < {floor:.2f}x "
                f"(committed {then:.2f}x / factor {factor})"
            )
    return failures


def format_report(payload: Dict[str, Any]) -> str:
    """Human-readable summary of a suite payload."""
    synth = payload["micro"]["synthesis"]
    sim = payload["micro"]["sim"]
    batch = payload["macro"]["table2_batch"]
    scaling = payload["macro"]["jobs_scaling"]
    lines = [
        f"perf suite -- scale={payload['meta']['scale']} "
        f"scenario={payload['meta']['scenario']}",
        "",
        f"synthesis merged  ({synth['runs_merged']} runs, "
        f"{synth['merged']['events']} events, {synth['merged']['pids']} pids): "
        f"{synth['merged']['new_s'] * 1000:.1f} ms, "
        f"{synth['merged']['events_per_sec'] / 1e6:.2f} Mev/s, "
        f"{synth['merged']['speedup']:.2f}x vs legacy",
        f"synthesis single  ({synth['single']['events']} events): "
        f"{synth['single']['new_s'] * 1000:.1f} ms, "
        f"{synth['single']['speedup']:.2f}x vs legacy",
        f"sim               ({sim['trace_events']} trace events / "
        f"{sim['sim_seconds']} sim-s): {sim['new_s']:.3f} s, "
        f"{sim['events_per_sec'] / 1e3:.0f} kev/s, "
        f"{sim['speedup_vs_legacy']:.2f}x vs legacy stack, "
        f"{sim['calls_per_event']:.1f} calls/event "
        f"(legacy {sim['legacy_calls_per_event']:.1f}, "
        f"{sim['call_reduction_vs_legacy']:.2f}x fewer)",
        f"table2 batch      ({batch['runs']} x {batch['duration_s']} s): "
        f"{batch['new_s']:.3f} s"
        + (
            f", {batch['speedup']:.2f}x vs pre-change tree"
            if "speedup" in batch
            else ""
        ),
        f"jobs scaling      (jobs={scaling['jobs']}, "
        f"{scaling.get('available_cpus', '?')} usable CPU(s)): "
        f"{scaling['speedup']:.2f}x speedup, "
        f"{scaling['efficiency'] * 100:.0f}% efficiency",
    ]
    store = payload.get("store")
    if store:
        encode, decode, synth = store["encode"], store["decode"], store["synthesis"]
        lines += [
            f"store encode      ({store['runs']} runs, {store['events']} events): "
            f"{encode['binary_s'] * 1000:.1f} ms, "
            f"{encode['binary_mb_per_s']:.1f} MB/s, "
            f"{encode['bytes_per_event']:.1f} B/event, "
            f"{encode['speedup_vs_json']:.2f}x vs gzip-JSON",
            f"store decode      : {decode['binary_s'] * 1000:.1f} ms, "
            f"{decode['events_per_sec'] / 1e6:.2f} Mev/s, "
            f"{decode['speedup_vs_json']:.2f}x vs gzip-JSON",
            f"store synthesis   (jobs={synth['jobs']}, "
            f"{synth['available_cpus']} usable CPU(s)): "
            f"{synth['store_overhead']:.2f}x inline overhead, "
            f"{synth['sharded_speedup']:.2f}x sharded speedup",
        ]
        v1 = store.get("format_v1")
        if v1:
            lines.append(
                f"store v2 vs v1    : {v1['v2_decode_speedup']:.2f}x decode, "
                f"{v1['v2_synthesis_speedup']:.2f}x serial synthesis, "
                f"{v1['v2_bytes_ratio']:.2f}x bytes"
            )
        v2 = store.get("format_v2")
        if v2:
            lines.append(
                f"store v3 vs v2    : {v2['v3_decode_speedup']:.2f}x decode, "
                f"{v2['v3_synthesis_speedup']:.2f}x serial synthesis, "
                f"{v2['v3_bytes_ratio']:.2f}x bytes"
            )
        sel = store.get("selective_read")
        if sel:
            lines.append(
                f"store selective   : walk inflates "
                f"{sel['walk_fraction'] * 100:.0f}% of a full decode, "
                f"analysis {sel['analysis_fraction'] * 100:.0f}%, "
                f"pid subset ({sel['pid_subset']}/{sel['pids']} pids) "
                f"{sel['pid_subset_bytes'] / max(1, sel['full_decode_bytes']) * 100:.0f}%"
            )
    ingest = payload.get("service", {}).get("ingest")
    if ingest:
        lines.append(
            f"service ingest    ({ingest['runs']} arrivals, "
            f"{ingest['events']} events): "
            f"{ingest['per_segment_ms']:.1f} ms/segment incremental, "
            f"{ingest['speedup_vs_rebuild']:.2f}x vs per-commit rebuild "
            f"({ingest['extends']} extend(s), {ingest['rebuilds']} rebuild(s))"
        )
    return "\n".join(lines)


def write_payload(payload: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

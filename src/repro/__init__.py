"""repro: trace-enabled timing model synthesis for ROS2-based autonomous
applications.

A full-stack reproduction of the DATE 2024 paper by Abaza et al.
(arXiv:2311.13333): a simulated Linux + ROS2 Foxy + CycloneDDS machine,
an eBPF-style tracing substrate implementing the paper's P1..P16 probes
and three tracers, and the timing-model synthesis pipeline (Alg. 1,
Alg. 2, DAG synthesis with service replication and AND/OR junctions).

Quickstart::

    from repro import World, Node, TracingSession, synthesize_from_trace

    world = World(num_cpus=2, seed=1)
    node = Node(world, "ticker")
    node.create_timer(100_000_000, lambda api, msg: (yield api.compute(2_000_000)))

    session = TracingSession(world)
    session.start_init()
    world.launch()
    world.run(for_ns=1_000_000)
    session.stop_init()
    session.start_runtime()
    world.run(for_ns=10_000_000_000)
    session.stop_runtime()

    dag = synthesize_from_trace(session.trace())
"""

from .core import (
    ExecStats,
    TimingDag,
    dag_from_runs,
    format_exec_table,
    merge_dags,
    synthesize_from_database,
    synthesize_from_trace,
    to_dot,
)
from .ros2 import ExternalPublisher, Msg, Node
from .sim import SchedPolicy, ms, us
from .tracing import Trace, TraceDatabase, TracingSession, measure_overhead
from .world import World

__version__ = "1.0.0"

__all__ = [
    "ExecStats",
    "TimingDag",
    "dag_from_runs",
    "format_exec_table",
    "merge_dags",
    "synthesize_from_database",
    "synthesize_from_trace",
    "to_dot",
    "ExternalPublisher",
    "Msg",
    "Node",
    "SchedPolicy",
    "ms",
    "us",
    "Trace",
    "TraceDatabase",
    "TracingSession",
    "measure_overhead",
    "World",
    "__version__",
]

"""repro: trace-enabled timing model synthesis for ROS2-based autonomous
applications.

A full-stack reproduction of the DATE 2024 paper by Abaza et al.
(arXiv:2311.13333): a simulated Linux + ROS2 Foxy + CycloneDDS machine,
an eBPF-style tracing substrate implementing the paper's P1..P16 probes
and three tracers, and the timing-model synthesis pipeline (Alg. 1,
Alg. 2, DAG synthesis with service replication and AND/OR junctions).

Quickstart::

    from repro import World, Node, TracingSession, synthesize_from_trace

    world = World(num_cpus=2, seed=1)
    node = Node(world, "ticker")
    node.create_timer(100_000_000, lambda api, msg: (yield api.compute(2_000_000)))

    session = TracingSession(world)
    session.start_init()
    world.launch()
    world.run(for_ns=1_000_000)
    session.stop_init()
    session.start_runtime()
    world.run(for_ns=10_000_000_000)
    session.stop_runtime()

    dag = synthesize_from_trace(session.trace())

Scenario DSL: applications can also be declared as data.  A
:class:`~repro.scenarios.ScenarioSpec` lists nodes, timers,
subscriptions, services, clients, synchronizers and external feeds; it
builds a ready-to-trace world *and* predicts the exact DAG the
synthesis must recover (its own ground truth)::

    from repro import ScenarioSpec, NodeSpec, TimerSpec, SubscriptionSpec
    from repro.sim.workload import Constant, ms

    spec = ScenarioSpec(
        name="demo", description="timer -> subscriber chain",
        nodes=(NodeSpec("producer"), NodeSpec("consumer")),
        timers=(TimerSpec("producer", "SRC", ms(100), Constant(ms(2)),
                          publishes=("/data",)),),
        subscriptions=(SubscriptionSpec("consumer", "SNK", "/data",
                                        Constant(ms(1))),),
    )
    app = spec.build(World(num_cpus=2, seed=1))   # ready to trace
    spec.expected_edge_pairs()                     # ground-truth edges

Named scenarios live in a registry (``repro.scenarios``: the paper's
``avp``/``syn``/``avp-interference`` plus sensor-fusion, service-mesh,
overload and deep-pipeline stressors).  The batch runner executes any
entry N times with per-run seeds, sharded over worker processes, and
merges the per-run DAGs -- results are identical for any job count::

    from repro import run_batch, BatchConfig, scenario_names

    scenario_names()                       # registry listing
    result = run_batch("avp", runs=50, jobs=8,
                       config=BatchConfig(base_seed=2000))
    print(result.table())                  # Table II-style merged stats

From a shell: ``python -m repro scenarios`` and ``python -m repro batch
avp --runs 50 --jobs 8`` (see ``examples/batch_scenarios.py``).

For runs too numerous to hold in memory, ``repro.store`` persists every
run as a compact binary segment (written from a trace or streamed
during simulation) and synthesizes the model straight from disk with
PID-sharded multi-process extraction -- byte-identical to the
in-memory pipeline::

    from repro import record_batch, synthesize_from_store

    record_batch("avp", runs=50, directory="traces/", jobs=8)
    dag = synthesize_from_store("traces/", jobs=8)

(``python -m repro record`` / ``python -m repro synthesize`` from a
shell.)
"""

from .core import (
    ExecStats,
    TimingDag,
    dag_from_runs,
    format_exec_table,
    merge_dags,
    synthesize_from_database,
    synthesize_from_trace,
    to_dot,
)
from .experiments.batch import BatchConfig, BatchResult, run_batch
from .ros2 import ExternalPublisher, Msg, Node
from .scenarios import (
    ClientSpec,
    ExternalPublisherSpec,
    NodeSpec,
    ScenarioSpec,
    ServiceSpec,
    SubscriptionSpec,
    SyncInputSpec,
    SynchronizerSpec,
    TimerSpec,
    build_scenario_spec,
    scenario_names,
)
from .sim import SchedPolicy, ms, us
from .store import (
    StoreDatabase,
    TraceStore,
    record_batch,
    synthesize_from_store,
)
from .tracing import Trace, TraceDatabase, TracingSession, measure_overhead
from .world import World

__version__ = "1.2.0"

__all__ = [
    "ExecStats",
    "TimingDag",
    "dag_from_runs",
    "format_exec_table",
    "merge_dags",
    "synthesize_from_database",
    "synthesize_from_trace",
    "to_dot",
    "BatchConfig",
    "BatchResult",
    "run_batch",
    "ExternalPublisher",
    "Msg",
    "Node",
    "ClientSpec",
    "ExternalPublisherSpec",
    "NodeSpec",
    "ScenarioSpec",
    "ServiceSpec",
    "SubscriptionSpec",
    "SyncInputSpec",
    "SynchronizerSpec",
    "TimerSpec",
    "build_scenario_spec",
    "scenario_names",
    "SchedPolicy",
    "ms",
    "us",
    "StoreDatabase",
    "TraceStore",
    "record_batch",
    "synthesize_from_store",
    "Trace",
    "TraceDatabase",
    "TracingSession",
    "measure_overhead",
    "World",
    "__version__",
]

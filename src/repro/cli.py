"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro table1
    python -m repro fig3a [--duration 12] [--seed 42] [--dot out.dot]
    python -m repro fig3b [--duration 20] [--dot out.dot] [--json out.json]
    python -m repro table2 [--runs 50] [--duration 10] [--jobs 4]
    python -m repro fig4   [--runs 50] [--duration 10] [--jobs 4]
    python -m repro overhead [--duration 60]
    python -m repro scenarios [--json]
    python -m repro batch <scenario> [--runs 8] [--jobs 4] [--duration 10]
                          [--seed 1000] [--policy psjf] [--dot out.dot]
                          [--json out.json]
    python -m repro fuzz  [--seed 0] [--count 100] [--policy edf ...]
                          [--jobs 4] [--duration 1.5] [--fail-dir DIR]
                          [--replay FILE]
    python -m repro record <scenario> [--out DIR] [--push ADDR] [--runs 8]
                          [--jobs 4] [--duration 10] [--seed 1000]
                          [--segment-every 1.0] [--force] [--format-version 3]
    python -m repro synthesize DIR [--jobs 4] [--strategy merge-traces]
                          [--pids 1,2,...] [--dot out.dot] [--json out.json]
    python -m repro store-info DIR [--json] [--watch] [--interval 0.5]
                          [--watch-count N]
    python -m repro serve DIR [--socket 127.0.0.1:0] [--drop-dir DIR]
                          [--retain-window N] [--poll-interval 0.5]
                          [--max-seconds S] [--log FILE]
    python -m repro ingest ADDR FILE [FILE ...] [--remove]
    python -m repro query ADDR {status,model,chains,latency,store-info,
                          ping,shutdown} [--format dot] [--out FILE]
                          [--topics a,b] [--sources k1] [--sinks k2]
    python -m repro convert DIR [--remove] [--upgrade] [--format-version 3]
                          [--cache DIR]
    python -m repro diff OLD NEW [--drift-threshold 0.10] [--percentile 99]
                          [--gate-factor 1.2] [--old-run ID] [--new-run ID]
                          [--jobs 4] [--fail-on any] [--json out.json]
    python -m repro analyze DIR [--report chains,jitter,load] [--topics a,b]
                          [--pids 1,2,...] [--jobs 4] [--sources k1,k2]
                          [--sinks k3] [--waiting-pid PID]
    python -m repro perf  [--scale smoke|default|full] [--out BENCH_6.json]
                          [--baseline-src PATH] [--baseline-ref REF]
                          [--check BENCH_6.json] [--factor 2.0]

Durations are in (simulated) seconds.  Every command prints the
regenerated table/figure in the same shape the paper reports;
``scenarios`` lists the registry and ``batch`` runs any entry N times
across worker processes and reports the merged timing model.
``record`` stores seeded scenario runs as binary trace segments (the
Fig. 2 database server) and ``synthesize`` turns a store back into the
timing model with PID-sharded multi-process extraction -- the two
halves of the collect-now/synthesize-later workflow.  ``store-info``
summarizes what a (possibly mixed-format) store directory contains
(``--json`` for tooling, including per-section sizes of v3 segments)
and ``convert`` re-encodes legacy gzip-JSON runs -- and, with
``--upgrade``, older binary segments -- into the current segment
format; ``--cache DIR`` additionally materializes the store's
mmap-ready uncompressed segment cache.

``serve`` runs the live synthesis service over a store directory:
segments arriving over the socket (``repro record --push``, ``repro
ingest``) or a watched drop directory fold incrementally into the
maintained timing model, which ``query`` reads back (``model`` /
``chains`` / ``latency`` / ``store-info`` / ``status``) while ingestion
continues.  ``store-info --watch`` re-prints the listing whenever the
directory changes -- in-flight staging files are never listed.

``fuzz`` samples random-but-valid scenario specs from a seeded
generator, runs each under its scheduling policy (all registered
policies in rotation, or the ``--policy`` subset) and self-checks the
synthesized DAG against the spec-derived oracle; failing specs are
dumped as replayable JSON (``--fail-dir``, re-checked via ``--replay``)
and any mismatch exits 1.  ``batch --policy`` runs a registered
scenario under a non-default scheduling policy; ``scenarios --json``
emits the registry as one machine-readable document.

``diff`` compares two timing models -- each side a store directory
(synthesized out-of-core), one recorded run of a store (``--old-run`` /
``--new-run``), or an exported model JSON -- applying the structural
diff, the relative drift threshold, and percentile exec-time gates; it
exits nonzero on regression so it can gate CI.  ``analyze`` streams the
chain / jitter / load / latency reports straight from a store without
materializing the merged trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.export import dag_to_json, format_edges, format_exec_table, to_dot
from .experiments.batch import BatchConfig, run_batch
from .experiments.fig3 import run_fig3a, run_fig3b
from .experiments.fig4 import fig4_from_table2
from .experiments.overhead import run_overhead
from .experiments.table1 import run_table1
from .experiments.table2 import Table2Config, run_table2
from .scenarios import build_scenario_spec, get_scenario, scenario_names
from .sim.kernel import SEC
from .sim.policies import POLICY_NAMES


def _write_artifacts(dag, args) -> None:
    if getattr(args, "dot", None):
        with open(args.dot, "w") as handle:
            handle.write(to_dot(dag))
        print(f"\nwrote {args.dot}")
    if getattr(args, "json", None):
        with open(args.json, "w") as handle:
            handle.write(dag_to_json(dag, indent=2))
        print(f"wrote {args.json}")


def _cmd_table1(args) -> int:
    result = run_table1()
    print(result.table())
    if not result.complete:
        print(f"MISSING PROBES: {result.missing}", file=sys.stderr)
        return 1
    return 0


def _cmd_fig3a(args) -> int:
    result = run_fig3a(duration_ns=int(args.duration * SEC), seed=args.seed)
    print("Fig. 3a -- SYN callbacks and precedence relations\n")
    print(format_edges(result.dag))
    print()
    for name, ok in result.checks:
        print(f"  [{'PASS' if ok else 'FAIL'}] {name}")
    _write_artifacts(result.dag, args)
    return 0 if result.all_passed else 1


def _cmd_fig3b(args) -> int:
    result = run_fig3b(duration_ns=int(args.duration * SEC), seed=args.seed)
    print("Fig. 3b -- AVP localization DAG\n")
    print(format_edges(result.dag))
    print()
    print(format_exec_table(result.dag))
    print()
    for name, ok in result.checks:
        print(f"  [{'PASS' if ok else 'FAIL'}] {name}")
    _write_artifacts(result.dag, args)
    return 0 if result.all_passed else 1


def _cmd_table2(args) -> int:
    config = Table2Config(
        runs=args.runs, duration_ns=int(args.duration * SEC), jobs=args.jobs
    )
    result = run_table2(config)
    print(f"Table II -- execution times over {args.runs} runs x "
          f"{args.duration:.0f} s\n")
    print(result.table())
    print("\npaper-vs-measured:")
    print(result.comparison())
    return 0


def _cmd_fig4(args) -> int:
    config = Table2Config(
        runs=args.runs, duration_ns=int(args.duration * SEC), jobs=args.jobs
    )
    table2 = run_table2(config)
    result = fig4_from_table2(table2)
    print(f"Fig. 4 -- estimates vs number of runs ({args.runs} runs)\n")
    print(result.table())
    print()
    for cb in sorted(result.series):
        series = result.series[cb]
        print(f"{cb}: mWCET growth {100 * series.mwcet_growth():.1f}%, "
              f"stable from run {series.runs_to_converge()}")
    return 0


def _cmd_scenarios(args) -> int:
    if getattr(args, "as_json", False):
        import json as json_module

        entries = []
        for name in scenario_names():
            entry = get_scenario(name)
            spec = build_scenario_spec(name)
            entries.append({
                "name": name,
                "summary": entry.summary,
                "tags": list(entry.tags),
                "nodes": len(spec.nodes),
                "callbacks": len(spec.callback_labels()),
                "edges": len(spec.expected_edge_pairs()),
                "policy": spec.policy,
                "num_cpus": spec.num_cpus,
                "duration_ns": spec.duration_ns,
            })
        print(json_module.dumps({"scenarios": entries}, indent=2))
        return 0
    print(f"{'scenario':<18} {'nodes':>5} {'CBs':>4} {'edges':>5}  summary")
    print("-" * 78)
    for name in scenario_names():
        entry = get_scenario(name)
        spec = build_scenario_spec(name)
        print(
            f"{name:<18} {len(spec.nodes):>5} "
            f"{len(spec.callback_labels()):>4} "
            f"{len(spec.expected_edge_pairs()):>5}  {entry.summary}"
        )
    return 0


def _cmd_batch(args) -> int:
    duration_ns = int(args.duration * SEC) if args.duration is not None else None
    config = BatchConfig(
        duration_ns=duration_ns,
        num_cpus=args.cpus,
        base_seed=args.seed,
        collect_traces=False,
        sched_policy=args.policy,
    )
    result = run_batch(args.scenario, runs=args.runs, jobs=args.jobs, config=config)
    seconds = (duration_ns if duration_ns is not None else result.spec.duration_ns) / SEC
    policy_note = f", policy {args.policy}" if args.policy else ""
    print(
        f"batch {args.scenario} -- {args.runs} runs x {seconds:.0f} s "
        f"on {result.jobs} worker(s){policy_note}\n"
    )
    print(format_edges(result.merged_dag))
    print()
    print(result.table())
    _write_artifacts(result.merged_dag, args)
    return 0


def _positive_int(text: str) -> int:
    """argparse type for ``--jobs`` / ``--runs`` / ``--count``: zero or
    negative counts become a clean usage error (exit code 2), not a deep
    ValueError traceback."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"invalid value {text!r} (need a positive integer)"
        )
    return value


def _cmd_fuzz(args) -> int:
    import json as json_module
    import os

    from .scenarios.fuzz import (
        DEFAULT_FUZZ_DURATION_NS,
        check_spec,
        run_fuzz,
        spec_from_json,
        world_seed_for,
    )

    if args.replay is not None:
        # Re-check a dumped failing spec (or any spec_to_json document).
        try:
            with open(args.replay) as handle:
                data = json_module.load(handle)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        dump = data.get("spec", data)  # failure dump or bare spec
        spec = spec_from_json(dump)
        base_seed = data.get(
            "world_seed", world_seed_for(data.get("seed", 0), data.get("index", 0))
        )
        ok, mismatches = check_spec(spec, base_seed=base_seed)
        print(f"replay {spec.name} ({spec.policy}, {spec.num_cpus} CPU(s)): "
              f"{'OK' if ok else 'MISMATCH'}")
        for line in mismatches:
            print(f"  {line}")
        return 0 if ok else 1

    duration_ns = (
        int(args.duration * SEC)
        if args.duration is not None
        else DEFAULT_FUZZ_DURATION_NS
    )
    policies = tuple(args.policy) if args.policy else None
    report = run_fuzz(
        args.seed, args.count, policies=policies, jobs=args.jobs,
        duration_ns=duration_ns,
    )
    print(
        f"fuzz -- seed {report.seed}, {report.count} sampled scenario(s) "
        f"over {', '.join(report.policies)} on {report.jobs} worker(s)\n"
    )
    print(f"{'policy':<10} {'pass':>6} {'fail':>6}")
    for policy, (passed, failed) in sorted(report.by_policy().items()):
        print(f"{policy:<10} {passed:>6} {failed:>6}")
    failures = report.failures
    if failures and args.fail_dir:
        os.makedirs(args.fail_dir, exist_ok=True)
        for verdict in failures:
            path = os.path.join(
                args.fail_dir, f"fuzz-{verdict.seed}-{verdict.index}.json"
            )
            with open(path, "w") as handle:
                json_module.dump({
                    "seed": verdict.seed,
                    "index": verdict.index,
                    "policy": verdict.policy,
                    "world_seed": world_seed_for(verdict.seed, verdict.index),
                    "mismatches": list(verdict.mismatches),
                    "spec": json_module.loads(verdict.spec_json),
                }, handle, indent=2, sort_keys=True)
            print(f"wrote {path}")
    for verdict in failures:
        print(f"\nMISMATCH {verdict.scenario} ({verdict.policy}):")
        for line in verdict.mismatches:
            print(f"  {line}")
    if failures:
        print(f"\n{len(failures)}/{report.count} sampled scenario(s) failed "
              f"their self-check")
        return 1
    print(f"\nall {report.count} sampled scenario(s) passed their self-check")
    return 0


def _cmd_record(args) -> int:
    from .experiments.batch import BatchConfig as _BatchConfig
    from .service.client import ServiceError
    from .store import record_batch

    if args.out is None and args.push is None:
        print("error: record needs --out and/or --push", file=sys.stderr)
        return 2
    duration_ns = int(args.duration * SEC) if args.duration is not None else None
    segment_every = (
        int(args.segment_every * SEC) if args.segment_every is not None else None
    )
    config = _BatchConfig(
        duration_ns=duration_ns,
        num_cpus=args.cpus,
        base_seed=args.seed,
        segment_every_ns=segment_every,
    )
    tempdir = None
    out = args.out
    if out is None:
        # Push-only recording: segments live in the service's store; the
        # local copies are staging only.
        import tempfile

        tempdir = tempfile.TemporaryDirectory(prefix="repro-record-")
        out = tempdir.name
    try:
        try:
            result = record_batch(
                args.scenario, runs=args.runs, directory=out, jobs=args.jobs,
                config=config, force=args.force,
                format_version=args.format_version,
                push_to=args.push,
            )
        except (ValueError, OSError, ServiceError) as error:
            # E.g. recording over a store that already holds the run ids
            # (--force overrides), or an unreachable --push endpoint: a
            # clear refusal, not a traceback.
            print(f"error: {error}", file=sys.stderr)
            return 2
        destination = args.push if args.out is None else result.directory
        print(
            f"recorded {args.scenario} -- {len(result.runs)} run(s) on "
            f"{result.jobs} worker(s) -> {destination}\n"
        )
        print(f"{'run':<10} {'ros events':>10} {'sched events':>12} {'bytes':>10}")
        for run in result.runs:
            print(
                f"{run.run_id:<10} {run.ros_events:>10} "
                f"{run.sched_events:>12} {run.bytes_written:>10}"
            )
        print(
            f"\ntotal {result.total_events} events, {result.total_bytes} bytes "
            f"({result.total_bytes / max(1, result.total_events):.1f} B/event)"
        )
        if args.push is not None:
            pushed = sum(1 for run in result.runs if run.pushed)
            print(f"pushed {pushed} segment(s) to {args.push}")
        return 0
    finally:
        if tempdir is not None:
            tempdir.cleanup()


def _parse_pids(text: str) -> List[int]:
    """argparse type for ``--pids``: malformed input becomes a clean
    usage error (exit code 2), not a ValueError traceback."""
    pids = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            pids.append(int(part))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid PID {part!r} in {text!r} "
                "(expected comma-separated integers)"
            )
    if not pids:
        raise argparse.ArgumentTypeError(
            f"no PIDs in {text!r} (expected comma-separated integers)"
        )
    return pids


def _cmd_synthesize(args) -> int:
    from .core.pipeline import STRATEGY_MERGE_DAGS, STRATEGY_MERGE_TRACES
    from .store import TraceStore, synthesize_from_store

    # ``choices=`` already rejects unknown names at parse time (exit
    # code 2); this maps the validated CLI spelling to the API constant.
    strategy = {
        "merge-traces": STRATEGY_MERGE_TRACES,
        "merge-dags": STRATEGY_MERGE_DAGS,
    }[args.strategy]
    pids = args.pids
    store = TraceStore(args.store)
    dag = synthesize_from_store(
        store, pids=pids, jobs=args.jobs, strategy=strategy
    )
    print(
        f"synthesized {len(store)} stored run(s) from {store.directory} "
        f"({args.strategy}, {args.jobs} job(s))\n"
    )
    print(format_edges(dag))
    print()
    print(format_exec_table(dag))
    _write_artifacts(dag, args)
    return 0


def _print_store_infos(store, infos) -> None:
    """The human-readable ``store-info`` table (shared by the one-shot
    listing and every ``--watch`` reprint)."""
    print(f"trace store {store.directory} -- {len(infos)} run(s)\n")
    print(
        f"{'run':<12} {'format':>8} {'events':>9} {'ros':>9} {'sched':>9} "
        f"{'pids':>5} {'bytes':>10} {'B/event':>8}"
    )
    totals = {"events": 0, "bytes": 0}
    versions = set()
    for info in infos:
        label = "json" if info.format_version is None else f"v{info.format_version}"
        versions.add(label)
        totals["events"] += info.events
        totals["bytes"] += info.size_bytes
        print(
            f"{info.run_id:<12} {label:>8} {info.events:>9} "
            f"{info.ros_events:>9} {info.sched_events:>9} {info.pids:>5} "
            f"{info.size_bytes:>10} {info.bytes_per_event:>8.1f}"
        )
    if infos:
        print(
            f"\ntotal {totals['events']} events, {totals['bytes']} bytes "
            f"({totals['bytes'] / max(1, totals['events']):.1f} B/event), "
            f"formats: {', '.join(sorted(versions))}"
        )


def _store_info_watch(store, args) -> int:
    """``store-info --watch``: poll the directory and re-print whenever
    the committed run set changes.  Only finished segments participate
    -- writers' in-flight ``*.tmp`` staging files are invisible to the
    store scan, so a listing never reads a half-written run."""
    import time as time_module

    from .store import StoreError, StoreFormatError

    printed = 0
    signature = None
    while True:
        store.refresh()
        try:
            infos = store.run_infos()
        except (StoreError, StoreFormatError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        current = tuple(
            (info.run_id, info.format_version, info.size_bytes)
            for info in infos
        )
        if current != signature:
            signature = current
            if printed:
                print()
            if args.as_json:
                _store_info_json(store, infos)
            else:
                _print_store_infos(store, infos)
            sys.stdout.flush()
            printed += 1
            if args.watch_count is not None and printed >= args.watch_count:
                return 0
        time_module.sleep(args.interval)


def _cmd_store_info(args) -> int:
    from .store import StoreError, StoreFormatError, TraceStore

    try:
        store = TraceStore(args.store, allow_empty=True, strict=args.strict)
        infos = store.run_infos()
    except (FileNotFoundError, StoreError, StoreFormatError) as error:
        # An unreadable run fails the listing under the default strict
        # mode; --no-strict downgrades it to a warning + skip.
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.watch:
        try:
            return _store_info_watch(store, args)
        except KeyboardInterrupt:
            return 0
    if args.as_json:
        return _store_info_json(store, infos)
    _print_store_infos(store, infos)
    return 0


def _store_info_json(store, infos) -> int:
    """``store-info --json``: one stable document tooling/CI can assert
    on -- per-run format version, event counts, size, B/event, and the
    per-section byte budget for v3 segments."""
    import json as json_module

    from .store.reader import peek_sections

    runs = []
    for info in infos:
        entry = {
            "run_id": info.run_id,
            "format_version": info.format_version,
            "events": info.events,
            "ros_events": info.ros_events,
            "sched_events": info.sched_events,
            "wakeup_events": info.wakeup_events,
            "pids": info.pids,
            "size_bytes": info.size_bytes,
            "bytes_per_event": round(info.bytes_per_event, 3),
        }
        if info.format_version is not None and info.format_version >= 3:
            entry["sections"] = [
                {
                    "name": section.name,
                    "compressed": section.comp != 0,
                    "stored_bytes": section.comp_len,
                    "raw_bytes": section.raw_len,
                }
                for section in peek_sections(info.path)
            ]
        runs.append(entry)
    total_events = sum(info.events for info in infos)
    total_bytes = sum(info.size_bytes for info in infos)
    print(json_module.dumps({
        "directory": store.directory,
        "runs": runs,
        "total_events": total_events,
        "total_bytes": total_bytes,
        "bytes_per_event": round(total_bytes / max(1, total_events), 3),
    }, indent=2))
    return 0


def _cmd_serve(args) -> int:
    from .service import SynthesisService

    log_handle = open(args.log, "a", buffering=1) if args.log else None

    def log(message: str) -> None:
        print(message, flush=True)
        if log_handle is not None:
            log_handle.write(message + "\n")

    try:
        try:
            service = SynthesisService(
                args.store,
                retain_window=args.retain_window,
                drop_dir=args.drop_dir,
                poll_interval=args.poll_interval,
                log=log,
            )
            counters = service.serve_forever(
                args.socket, max_seconds=args.max_seconds
            )
        except KeyboardInterrupt:
            print("interrupted; shutting down", flush=True)
            return 0
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    finally:
        if log_handle is not None:
            log_handle.close()
    print(
        f"served {counters.queries_served} request(s); "
        f"{counters.segments_ingested} segment(s) ingested "
        f"({counters.extends} extend(s), {counters.rebuilds} rebuild(s)), "
        f"{counters.segments_rejected} rejected, "
        f"{counters.runs_evicted} run(s) evicted"
    )
    return 0


def _cmd_ingest(args) -> int:
    import os

    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.address)
    total_events = 0
    total_bytes = 0
    for path in args.files:
        try:
            result = client.push_file(path)
        except (OSError, ServiceError) as error:
            print(f"error: {path}: {error}", file=sys.stderr)
            return 2
        total_events += result["events"]
        total_bytes += result["bytes"]
        print(
            f"pushed {result['run_id']} -- {result['events']} events, "
            f"{result['bytes']} bytes"
        )
        if args.remove:
            os.remove(path)
    print(
        f"\n{len(args.files)} segment(s), {total_events} events, "
        f"{total_bytes} bytes -> {args.address}"
    )
    return 0


def _cmd_query(args) -> int:
    import json as json_module

    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.address)
    try:
        if args.query == "ping":
            client.ping()
            print(f"pong from {args.address}")
            return 0
        if args.query == "shutdown":
            client.shutdown()
            print(f"shutdown requested at {args.address}")
            return 0
        if args.query == "status":
            text = json_module.dumps(client.status(), indent=2, sort_keys=True)
        elif args.query == "model":
            text = client.model(args.format)
        elif args.query == "chains":
            text = client.chains_text(sources=args.sources, sinks=args.sinks)
        elif args.query == "latency":
            if not args.topics:
                print("error: query latency needs --topics", file=sys.stderr)
                return 2
            text = json_module.dumps(
                client.latency(args.topics), indent=2, sort_keys=True
            )
        else:  # store-info (choices= rejects anything else at parse time)
            text = json_module.dumps(
                client.store_info(), indent=2, sort_keys=True
            )
    except (OSError, ServiceError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _cmd_convert(args) -> int:
    from .store import StoreError, StoreFormatError, TraceStore

    try:
        store = TraceStore(args.store, cache_dir=args.cache)
        written = store.convert_legacy(
            remove=args.remove,
            format_version=args.format_version,
            upgrade=args.upgrade,
        )
        if args.cache is not None:
            cached = store.warm_cache()
            print(f"cached {len(cached)} uncompressed segment(s) in {args.cache}")
    except (FileNotFoundError, StoreError, StoreFormatError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not written:
        print(
            f"nothing to convert in {store.directory} "
            f"(all runs already v{args.format_version}"
            + ("" if args.upgrade else " or binary; --upgrade lifts old segments")
            + ")"
        )
        return 0
    for path in written:
        print(f"converted {path}")
    print(f"\n{len(written)} run(s) -> format v{args.format_version}")
    return 0


def _load_model(path: str, run: Optional[str], jobs: int):
    """One ``repro diff`` side -> a :class:`TimingDag`.

    ``path`` is either an exported model JSON file or a trace-store
    directory; a directory synthesizes out-of-core (``--jobs``-sharded),
    optionally narrowed to one recorded run id.
    """
    import os

    from .core.export import dag_from_json
    from .core.pipeline import synthesize_from_trace
    from .store import TraceStore, synthesize_from_store

    if os.path.isfile(path):
        if run is not None:
            raise ValueError(
                f"{path} is an exported model file; run selection "
                "(--old-run/--new-run) only applies to store directories"
            )
        with open(path) as handle:
            return dag_from_json(handle.read())
    store = TraceStore(path)
    if run is not None:
        if run not in store:
            raise ValueError(
                f"run {run!r} not in {store.directory} "
                f"(has: {', '.join(store.run_ids())})"
            )
        return synthesize_from_trace(store.load(run))
    return synthesize_from_store(store, jobs=jobs)


def _cmd_diff(args) -> int:
    import json

    from .core.diff import diff_dags, percentile_gates
    from .store import StoreError, StoreFormatError

    try:
        old = _load_model(args.old, args.old_run, args.jobs)
        new = _load_model(args.new, args.new_run, args.jobs)
    except (FileNotFoundError, StoreError, StoreFormatError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    diff = diff_dags(old, new, drift_threshold=args.drift_threshold)
    gates = percentile_gates(
        old, new, percentile=args.percentile, max_ratio=args.gate_factor
    )
    failed_gates = [g for g in gates if g.exceeded]

    print(f"diff {args.old} -> {args.new}\n")
    print(diff.summary())
    if gates:
        print()
        for gate in gates:
            print(gate.describe())

    structure_bad = not diff.is_empty
    gates_bad = bool(failed_gates)
    regression = {
        "any": structure_bad or gates_bad,
        "structure": structure_bad,
        "gates": gates_bad,
        "never": False,
    }[args.fail_on]
    verdict = "REGRESSION" if regression else "OK"
    print(
        f"\n{verdict}: {len(diff.added_vertices) + len(diff.removed_vertices)}"
        f" vertex change(s), {len(diff.added_edges) + len(diff.removed_edges)}"
        f" edge change(s), {len(diff.no_data)} no-data, "
        f"{len(diff.drifted)} drifted, "
        f"{len(failed_gates)}/{len(gates)} gate(s) failed "
        f"(fail-on={args.fail_on})"
    )

    if args.json:
        payload = {
            "old": args.old,
            "new": args.new,
            "drift_threshold": args.drift_threshold,
            "percentile": args.percentile,
            "gate_factor": args.gate_factor,
            "fail_on": args.fail_on,
            "regression": regression,
            "added_vertices": diff.added_vertices,
            "removed_vertices": diff.removed_vertices,
            "added_edges": [list(e) for e in diff.added_edges],
            "removed_edges": [list(e) for e in diff.removed_edges],
            "no_data": [
                {"key": g.key, "old_count": g.old_count, "new_count": g.new_count}
                for g in diff.no_data
            ],
            "drifted": [
                {
                    "key": d.key,
                    "old_mwcet": d.old_mwcet,
                    "new_mwcet": d.new_mwcet,
                    "old_macet": d.old_macet,
                    "new_macet": d.new_macet,
                }
                for d in diff.drifted
            ],
            "gates": [
                {
                    "key": g.key,
                    "percentile": g.percentile,
                    "old_ns": g.old_ns,
                    "new_ns": g.new_ns,
                    "ratio": g.ratio,
                    "exceeded": g.exceeded,
                }
                for g in gates
            ],
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}")

    return 1 if regression else 0


_ANALYZE_REPORTS = ("chains", "jitter", "load", "latency", "waiting")


def _parse_reports(text: str) -> List[str]:
    """argparse type for ``--report``: unknown report names become a
    clean usage error (exit code 2)."""
    reports = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part not in _ANALYZE_REPORTS:
            raise argparse.ArgumentTypeError(
                f"unknown report {part!r} "
                f"(choose from {', '.join(_ANALYZE_REPORTS)})"
            )
        if part not in reports:
            reports.append(part)
    if not reports:
        raise argparse.ArgumentTypeError(f"no reports in {text!r}")
    return reports


def _parse_keys(text: str) -> List[str]:
    keys = [part.strip() for part in text.split(",") if part.strip()]
    if not keys:
        raise argparse.ArgumentTypeError(f"no keys in {text!r}")
    return keys


def _cmd_analyze(args) -> int:
    from .analysis import StoreAnalysis, format_activations, format_chains, format_loads
    from .store import StoreError, StoreFormatError

    reports = list(args.report)
    if args.topics and "latency" not in reports:
        reports.append("latency")
    if args.waiting_pid is not None and "waiting" not in reports:
        reports.append("waiting")
    if "latency" in reports and not args.topics:
        print("error: --report latency needs --topics", file=sys.stderr)
        return 2
    if "waiting" in reports and args.waiting_pid is None:
        print("error: --report waiting needs --waiting-pid", file=sys.stderr)
        return 2

    try:
        analysis = StoreAnalysis(args.store, pids=args.pids, jobs=args.jobs)
        analysis.dag  # synthesize up front so store errors exit cleanly
    except (FileNotFoundError, StoreError, StoreFormatError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(
        f"analyze {analysis.store.directory} -- "
        f"{len(analysis.store)} run(s), reports: {', '.join(reports)}\n"
    )
    first = True
    for report in reports:
        if not first:
            print()
        first = False
        if report == "chains":
            chains = analysis.chains(sources=args.sources, sinks=args.sinks)
            print(f"== chains ({len(chains)}) ==")
            print(format_chains(analysis.dag, chains))
        elif report == "jitter":
            models = analysis.activation_models()
            print(f"== activation models ({len(models)}) ==")
            print(format_activations(analysis.dag))
        elif report == "load":
            print("== callback loads ==")
            print(format_loads(analysis.dag))
            print("\nper-node utilization:")
            for node, load in sorted(analysis.node_loads().items()):
                print(f"  {node:<24} {100 * load:6.2f}%")
        elif report == "latency":
            latencies = analysis.chain_latencies(args.topics)
            print(
                f"== chain latency over {' -> '.join(args.topics)} "
                f"({len(latencies)} instance(s)) =="
            )
            if latencies:
                values = sorted(lat.latency_ns for lat in latencies)
                mean = sum(values) / len(values)
                print(
                    f"  min {values[0] / 1e6:.3f} ms, "
                    f"mean {mean / 1e6:.3f} ms, "
                    f"max {values[-1] / 1e6:.3f} ms"
                )
            for topic in args.topics:
                comm = analysis.communication_latencies(topic)
                if comm:
                    print(
                        f"  {topic}: {len(comm)} transfer(s), "
                        f"mean {sum(comm) / len(comm) / 1e6:.3f} ms"
                    )
        elif report == "waiting":
            waits = analysis.waiting_times(args.waiting_pid)
            print(
                f"== waiting times, PID {args.waiting_pid} "
                f"({len(waits)} wakeup(s)) =="
            )
            if waits:
                values = sorted(w.waiting_ns for w in waits)
                mean = sum(values) / len(values)
                print(
                    f"  min {values[0] / 1e6:.3f} ms, "
                    f"mean {mean / 1e6:.3f} ms, "
                    f"max {values[-1] / 1e6:.3f} ms"
                )
    return 0


def _cmd_perf(args) -> int:
    import json

    from .perf import (
        PROFILE_SECTIONS,
        SCALES,
        check_regression,
        format_report,
        profile_section,
        run_perf_suite,
        write_payload,
    )

    if args.scale not in SCALES:
        print(f"unknown scale {args.scale!r}; choose from {sorted(SCALES)}",
              file=sys.stderr)
        return 2
    if args.profile:
        if args.profile not in PROFILE_SECTIONS:
            print(
                f"unknown profile section {args.profile!r}; "
                f"choose from {sorted(PROFILE_SECTIONS)}",
                file=sys.stderr,
            )
            return 2
        out = args.out or f"{args.profile}.pstats"
        print(profile_section(args.profile, args.scale, out=out, top=args.top))
        print(f"wrote {out}")
        return 0
    payload = run_perf_suite(
        args.scale,
        baseline_src=args.baseline_src,
        baseline_ref=args.baseline_ref,
    )
    print(format_report(payload))
    if args.out:
        write_payload(payload, args.out)
        print(f"\nwrote {args.out}")
    if args.check:
        with open(args.check) as handle:
            committed = json.load(handle)
        failures = check_regression(payload, committed, factor=args.factor)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"\nregression gate vs {args.check}: OK (factor {args.factor})")
    return 0


def _cmd_overhead(args) -> int:
    result = run_overhead(duration_ns=int(args.duration * SEC))
    print(f"Tracing overheads over {args.duration:.0f} s of SYN + AVP\n")
    print(result.summary())
    print("\npaper reference: 9 MB / 60 s, 0.008 cores (~0.3% of app load), "
          "filtering >= 3x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I: probe inventory")

    fig3a = sub.add_parser("fig3a", help="Fig. 3a: SYN timing model")
    fig3a.add_argument("--duration", type=float, default=12.0)
    fig3a.add_argument("--seed", type=int, default=42)
    fig3a.add_argument("--dot", help="write Graphviz DOT to this path")
    fig3a.add_argument("--json", help="write the model JSON to this path")

    fig3b = sub.add_parser("fig3b", help="Fig. 3b: AVP localization DAG")
    fig3b.add_argument("--duration", type=float, default=20.0)
    fig3b.add_argument("--seed", type=int, default=7)
    fig3b.add_argument("--dot", help="write Graphviz DOT to this path")
    fig3b.add_argument("--json", help="write the model JSON to this path")

    table2 = sub.add_parser("table2", help="Table II: AVP execution times")
    table2.add_argument("--runs", type=int, default=50)
    table2.add_argument("--duration", type=float, default=10.0)
    table2.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the independent runs")

    fig4 = sub.add_parser("fig4", help="Fig. 4: estimates vs runs")
    fig4.add_argument("--runs", type=int, default=50)
    fig4.add_argument("--duration", type=float, default=10.0)
    fig4.add_argument("--jobs", type=int, default=1,
                      help="worker processes for the independent runs")

    overhead = sub.add_parser("overhead", help="tracing overheads")
    overhead.add_argument("--duration", type=float, default=60.0)

    scenarios = sub.add_parser("scenarios", help="list the scenario registry")
    scenarios.add_argument("--json", dest="as_json", action="store_true",
                           help="machine-readable listing: name, summary, "
                                "tags, node/callback/edge counts, scheduling "
                                "policy, CPU count")

    batch = sub.add_parser(
        "batch", help="run a registered scenario N times across workers"
    )
    batch.add_argument("scenario", help="registry name (see `repro scenarios`)")
    batch.add_argument("--runs", type=_positive_int, default=8)
    batch.add_argument("--jobs", type=_positive_int, default=1,
                       help="worker processes (results identical for any value)")
    batch.add_argument("--duration", type=float, default=None,
                       help="seconds per run (default: the scenario's own)")
    batch.add_argument("--seed", type=int, default=1000)
    batch.add_argument("--cpus", type=int, default=None,
                       help="simulated CPUs (default: the scenario's own)")
    batch.add_argument("--policy", default=None, choices=POLICY_NAMES,
                       help="scheduling policy for every run (default: the "
                            "scenario's own, usually 'priority')")
    batch.add_argument("--dot", help="write the merged DAG as Graphviz DOT")
    batch.add_argument("--json", help="write the merged DAG as JSON")

    fuzz = sub.add_parser(
        "fuzz",
        help="sample random scenario specs and self-check each synthesized "
             "DAG against its spec-derived oracle",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="fuzz stream seed (same seed -> byte-identical "
                           "spec sequence and verdicts)")
    fuzz.add_argument("--count", type=_positive_int, default=100,
                      help="number of sampled scenarios (default 100)")
    fuzz.add_argument("--policy", action="append", choices=POLICY_NAMES,
                      default=None, metavar="POLICY",
                      help="restrict the policy rotation (repeatable; "
                           f"choices: {', '.join(POLICY_NAMES)}; default: "
                           "all policies)")
    fuzz.add_argument("--jobs", type=_positive_int, default=1,
                      help="worker processes (verdicts identical for any "
                           "value)")
    fuzz.add_argument("--duration", type=float, default=None,
                      help="simulated seconds per sampled scenario "
                           "(default 1.5)")
    fuzz.add_argument("--fail-dir", default=None,
                      help="dump each failing spec as replayable JSON "
                           "under this directory")
    fuzz.add_argument("--replay", default=None, metavar="FILE",
                      help="re-check one dumped failing spec instead of "
                           "sampling")

    record = sub.add_parser(
        "record",
        help="store seeded scenario runs as binary trace segments",
    )
    record.add_argument("scenario", help="registry name (see `repro scenarios`)")
    record.add_argument("--out", default=None,
                        help="store directory (created if missing); optional "
                             "when --push streams the segments to a live "
                             "service instead")
    record.add_argument("--push", metavar="ADDR", default=None,
                        help="push every finished segment to a `repro serve` "
                             "endpoint (host:port or unix socket path) right "
                             "after its local commit")
    record.add_argument("--runs", type=int, default=8)
    record.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes (store identical for any value)")
    record.add_argument("--duration", type=float, default=None,
                        help="seconds per run (default: the scenario's own)")
    record.add_argument("--seed", type=int, default=1000)
    record.add_argument("--cpus", type=int, default=None,
                        help="simulated CPUs (default: the scenario's own)")
    record.add_argument("--segment-every", type=float, default=None,
                        help="spool rotation interval in simulated seconds "
                             "(default 1.0)")
    record.add_argument("--force", action="store_true",
                        help="overwrite colliding run ids an earlier "
                             "recording left in --out (refused by default; "
                             "non-colliding stored runs stay and will merge "
                             "into later synthesis)")
    record.add_argument("--format-version", type=int, default=3,
                        choices=[1, 2, 3],
                        help="segment format to write (3 = per-section "
                             "compression, the default; 2 = typed payload "
                             "columns behind one body stream; 1 = "
                             "JSON-interned payloads, the original escape "
                             "hatch)")

    synthesize = sub.add_parser(
        "synthesize",
        help="trace store -> timing model (PID-sharded across processes)",
    )
    synthesize.add_argument("store", help="directory written by `repro record`")
    synthesize.add_argument("--jobs", type=_positive_int, default=1,
                            help="worker processes (results identical for "
                                 "any value)")
    synthesize.add_argument("--strategy", default="merge-traces",
                            choices=["merge-traces", "merge-dags"])
    synthesize.add_argument("--pids", default=None, type=_parse_pids,
                            help="comma-separated PID filter")
    synthesize.add_argument("--dot", help="write Graphviz DOT to this path")
    synthesize.add_argument("--json", help="write the model JSON to this path")

    store_info = sub.add_parser(
        "store-info",
        help="summarize a trace store: per-run format version, events, "
             "bytes, PIDs",
    )
    store_info.add_argument("store", help="store directory to inspect")
    store_info.add_argument("--no-strict", dest="strict", action="store_false",
                            help="skip unreadable runs with a warning "
                                 "instead of failing the listing")
    store_info.add_argument("--json", dest="as_json", action="store_true",
                            help="machine-readable output: per-run format "
                                 "version, event counts, bytes, B/event, and "
                                 "per-section sizes for v3 segments")
    store_info.add_argument("--watch", action="store_true",
                            help="keep polling the directory and re-print "
                                 "the listing whenever the committed run set "
                                 "changes (writers' in-flight *.tmp staging "
                                 "files never appear)")
    store_info.add_argument("--interval", type=float, default=0.5,
                            help="--watch poll interval in seconds "
                                 "(default 0.5)")
    store_info.add_argument("--watch-count", type=_positive_int, default=None,
                            help="stop --watch after this many printed "
                                 "listings (default: watch until ^C)")

    serve = sub.add_parser(
        "serve",
        help="run the live synthesis service over a store directory",
    )
    serve.add_argument("store",
                       help="store directory to serve (created if missing)")
    serve.add_argument("--socket", default="127.0.0.1:0",
                       help="listen address: host:port (port 0 picks an "
                            "ephemeral port, printed as 'listening on ...') "
                            "or a unix socket path (default 127.0.0.1:0)")
    serve.add_argument("--drop-dir", default=None,
                       help="also watch this directory; dropped *.trace.bin "
                            "files are validated, committed into the store "
                            "and removed")
    serve.add_argument("--retain-window", type=_positive_int, default=None,
                       help="keep only the newest N runs in the live model, "
                            "evicting older ones (default: retain everything)")
    serve.add_argument("--poll-interval", type=float, default=0.5,
                       help="drop-dir / store re-scan cadence in seconds "
                            "(default 0.5)")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="stop serving after this long -- a CI guard "
                            "(default: serve until a shutdown request)")
    serve.add_argument("--log", default=None,
                       help="append the service log to this file as well as "
                            "stdout")

    ingest = sub.add_parser(
        "ingest",
        help="push recorded .trace.bin segments to a live service",
    )
    ingest.add_argument("address",
                        help="service endpoint (host:port or unix socket "
                             "path)")
    ingest.add_argument("files", nargs="+",
                        help=".trace.bin segment files to push (run id = "
                             "file stem)")
    ingest.add_argument("--remove", action="store_true",
                        help="delete each local file after a successful push")

    query = sub.add_parser(
        "query", help="query a running live synthesis service"
    )
    query.add_argument("address",
                       help="service endpoint (host:port or unix socket "
                            "path)")
    query.add_argument("query",
                       choices=["status", "model", "chains", "latency",
                                "store-info", "ping", "shutdown"],
                       help="what to ask the service")
    query.add_argument("--format", default="dot",
                       choices=["dot", "json", "edges", "exec"],
                       help="model rendering for the model query "
                            "(default dot; matches `repro synthesize` "
                            "byte-for-byte)")
    query.add_argument("--out", default=None,
                       help="write the response body to this file instead "
                            "of stdout")
    query.add_argument("--topics", type=_parse_keys, default=None,
                       help="comma-separated topic chain (latency query)")
    query.add_argument("--sources", type=_parse_keys, default=None,
                       help="comma-separated chain source keys (chains "
                            "query)")
    query.add_argument("--sinks", type=_parse_keys, default=None,
                       help="comma-separated chain sink keys (chains query)")

    convert = sub.add_parser(
        "convert",
        help="re-encode legacy gzip-JSON runs (and, with --upgrade, old "
             "binary segments) into the current segment format",
    )
    convert.add_argument("store", help="store directory to convert in place")
    convert.add_argument("--remove", action="store_true",
                         help="delete legacy JSON originals after conversion")
    convert.add_argument("--upgrade", action="store_true",
                         help="also rewrite binary segments older than "
                              "--format-version (the v1/v2 -> v3 upgrade "
                              "path)")
    convert.add_argument("--format-version", type=int, default=3,
                         choices=[1, 2, 3],
                         help="target segment format (default 3)")
    convert.add_argument("--cache", metavar="DIR", default=None,
                         help="also materialize every binary run as an "
                              "uncompressed mmap-ready copy under DIR (the "
                              "segment cache later synthesis can reuse via "
                              "TraceStore(cache_dir=DIR))")

    diff = sub.add_parser(
        "diff",
        help="compare two timing models (stores or exported JSON); "
             "exit 1 on regression",
    )
    diff.add_argument("old", help="baseline: store directory or model JSON")
    diff.add_argument("new", help="candidate: store directory or model JSON")
    diff.add_argument("--old-run", default=None,
                      help="synthesize only this run id of the old store")
    diff.add_argument("--new-run", default=None,
                      help="synthesize only this run id of the new store")
    diff.add_argument("--jobs", type=_positive_int, default=1,
                      help="worker processes for store synthesis")
    diff.add_argument("--drift-threshold", type=float, default=0.10,
                      help="relative mWCET/mACET movement flagged as drift "
                           "(default 0.10)")
    diff.add_argument("--percentile", type=float, default=99.0,
                      help="exec-time percentile gated per callback "
                           "(default 99)")
    diff.add_argument("--gate-factor", type=float, default=1.2,
                      help="max allowed new/old percentile ratio "
                           "(default 1.2)")
    diff.add_argument("--fail-on", default="any",
                      choices=["any", "structure", "gates", "never"],
                      help="what counts as a regression (exit code 1); "
                           "'structure' covers vertices/edges/no-data/drift, "
                           "'gates' only the percentile gates")
    diff.add_argument("--json", help="write the full diff report JSON here")

    analyze = sub.add_parser(
        "analyze",
        help="stream chain/jitter/load/latency reports from a trace store",
    )
    analyze.add_argument("store", help="directory written by `repro record`")
    analyze.add_argument("--report", type=_parse_reports,
                         default=["chains", "jitter", "load"],
                         help="comma-separated subset of "
                              f"{{{','.join(_ANALYZE_REPORTS)}}} "
                              "(default chains,jitter,load)")
    analyze.add_argument("--topics", type=_parse_keys, default=None,
                         help="comma-separated topic chain; enables the "
                              "latency report")
    analyze.add_argument("--waiting-pid", type=int, default=None,
                         help="PID for the waiting-time report")
    analyze.add_argument("--sources", type=_parse_keys, default=None,
                         help="comma-separated chain source keys")
    analyze.add_argument("--sinks", type=_parse_keys, default=None,
                         help="comma-separated chain sink keys (chains stop "
                              "here even when successors exist)")
    analyze.add_argument("--pids", default=None, type=_parse_pids,
                         help="comma-separated PID filter")
    analyze.add_argument("--jobs", type=_positive_int, default=1,
                         help="worker processes for store synthesis")

    perf = sub.add_parser(
        "perf", help="run the perf harness; write/check BENCH_*.json"
    )
    perf.add_argument("--scale", default="default",
                      help="workload size: smoke | default | full")
    perf.add_argument("--out", help="write the suite results to this JSON path")
    perf.add_argument("--baseline-src",
                      help="src/ of a pre-change checkout; measures the "
                           "Table II macro batch against it in a subprocess")
    perf.add_argument("--baseline-ref",
                      help="label (e.g. git ref) recorded for --baseline-src")
    perf.add_argument("--check",
                      help="committed baseline JSON; exit 1 when an "
                           "in-process speedup regressed by more than "
                           "--factor")
    perf.add_argument("--factor", type=float, default=2.0,
                      help="allowed regression factor for --check")
    perf.add_argument("--profile",
                      help="cProfile one section (sim | sim-legacy | "
                           "synthesis | batch) instead of running the "
                           "suite; writes a .pstats artifact (--out "
                           "overrides the path)")
    perf.add_argument("--top", type=int, default=25,
                      help="rows of the --profile top-N report")

    return parser


COMMANDS = {
    "table1": _cmd_table1,
    "fig3a": _cmd_fig3a,
    "fig3b": _cmd_fig3b,
    "table2": _cmd_table2,
    "fig4": _cmd_fig4,
    "overhead": _cmd_overhead,
    "scenarios": _cmd_scenarios,
    "batch": _cmd_batch,
    "fuzz": _cmd_fuzz,
    "record": _cmd_record,
    "synthesize": _cmd_synthesize,
    "store-info": _cmd_store_info,
    "serve": _cmd_serve,
    "ingest": _cmd_ingest,
    "query": _cmd_query,
    "convert": _cmd_convert,
    "diff": _cmd_diff,
    "analyze": _cmd_analyze,
    "perf": _cmd_perf,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream closed the pipe (`repro ... | head`); swallow the
        # dangling-flush noise and exit like a well-behaved filter.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""The simulated machine: clock, CPUs, middleware symbols and DDS bus.

A :class:`World` is the top-level container every experiment starts from.
It owns:

* the discrete-event kernel (the machine's clock),
* the CPU scheduler (with its ``sched_switch`` / ``sched_wakeup``
  tracepoints),
* the symbol table of the simulated middleware shared objects (the
  attachment surface for uprobes),
* the DDS bus over which all ROS2 communication flows,
* a seeded random generator driving every stochastic model.

Typical use::

    world = World(num_cpus=4, seed=7)
    node = Node(world, "point_cloud_fusion")
    ...
    world.launch()          # spawn executor threads
    world.run(for_ns=80 * SEC)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from .sim.kernel import SimKernel
from .sim.scheduler import DEFAULT_TIMESLICE, Scheduler
from .tracing.symbols import ProbeContext, SymbolTable

#: Default one-way DDS delivery latency (intra-host CycloneDDS is in the
#: tens-of-microseconds range for point-cloud-sized payloads).
DEFAULT_DDS_LATENCY_NS = 50_000


class World:
    """A simulated machine hosting ROS2 applications.

    Parameters
    ----------
    num_cpus:
        CPUs of the machine (the paper's testbed is a 12-core Ryzen; the
        evaluation configs pick smaller affinity sets to create
        interference).
    seed:
        Seed for the world-wide random generator.
    timeslice:
        Round-robin quantum of the scheduler.
    dds_latency_ns:
        Constant one-way topic delivery latency.
    start_time_ns / first_pid:
        Clock and PID bases.  Successive runs of a multi-run experiment
        use disjoint bases so their traces can be merged into one stream
        (Fig. 2's "merge traces" strategy) exactly as successive runs on
        a real machine -- whose uptime clock and PID counter both keep
        advancing -- can.
    sched_policy:
        Scheduling policy name (``"priority"``, ``"psjf"``, ``"edf"``,
        ``"cfs"``) or a :class:`~repro.sim.policies.SchedulingPolicy`
        instance.  None keeps the scheduler's default priority/RR
        policy -- and keeps ``scheduler_cls`` injection working for
        substrate classes that predate the policy parameter.
    kernel_cls / scheduler_cls:
        Substrate implementations (defaults: the production kernel and
        scheduler).  The perf harness injects the frozen
        :mod:`repro._legacy` classes here to A/B-measure the hot-loop
        optimizations on otherwise identical machines.
    """

    def __init__(
        self,
        num_cpus: int = 4,
        seed: int = 0,
        timeslice: int = DEFAULT_TIMESLICE,
        dds_latency_ns: int = DEFAULT_DDS_LATENCY_NS,
        start_time_ns: int = 0,
        first_pid: int = 1,
        sched_policy=None,
        kernel_cls: type = SimKernel,
        scheduler_cls: type = Scheduler,
    ):
        self.kernel = kernel_cls(start=start_time_ns)
        sched_kwargs = {} if sched_policy is None else {"policy": sched_policy}
        self.scheduler = scheduler_cls(
            self.kernel,
            num_cpus=num_cpus,
            timeslice=timeslice,
            first_pid=first_pid,
            **sched_kwargs,
        )
        self.rng = np.random.default_rng(seed)
        self._ctx_cache: Optional[ProbeContext] = None
        self.symbols = SymbolTable(self._probe_context)
        #: Kernel tracepoints exposed to the BPF layer.
        self.tracepoints: Dict[str, Callable] = {
            "sched:sched_switch": self.scheduler.on_sched_switch,
            "sched:sched_wakeup": self.scheduler.on_sched_wakeup,
        }
        # DDS bus (import here to avoid a package cycle at import time).
        from .ros2.dds import DdsBus

        self.dds = DdsBus(self, latency_ns=dds_latency_ns)
        #: Nodes registered on this world (populated by Node.__init__).
        self.nodes: List = []
        self._launched = False

    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        return self.kernel.now

    def _probe_context(self) -> ProbeContext:
        # Hot loop (once per probe firing): read the scheduler/kernel
        # internals directly instead of through their properties, and
        # build the context via tuple.__new__ (skips the NamedTuple
        # keyword wrapper).  The last context is cached: a dispatch
        # typically fires several probes at one (instant, thread) --
        # entry, inner take, DDS write -- and contexts are immutable, so
        # re-serving one whose every field still matches is exact.
        thread = self.scheduler._advancing
        now = self.kernel._now
        ctx = self._ctx_cache
        if thread is None:
            # Fired from interrupt/kernel context (e.g. an external
            # publisher): no current task.
            if ctx is not None and ctx[1] == 0 and ctx[0] == now:
                return ctx
            ctx = tuple.__new__(ProbeContext, (now, 0, None, ""))
        else:
            if (
                ctx is not None
                and ctx[0] == now
                and ctx[1] == thread.pid
                and ctx[2] == thread.cpu
            ):
                return ctx
            ctx = tuple.__new__(
                ProbeContext, (now, thread.pid, thread.cpu, thread.name)
            )
        self._ctx_cache = ctx
        return ctx

    # ------------------------------------------------------------------

    def launch(self, start: int = 0) -> None:
        """Spawn one executor thread per registered node.

        Node threads start at ``start`` (plus each node's configured
        extra delay) and immediately announce themselves through
        ``rmw_create_node`` -- the event the ROS2-INIT tracer records.
        """
        if self._launched:
            raise RuntimeError("world already launched")
        self._launched = True
        for node in self.nodes:
            node._spawn(start)

    def run(self, for_ns: Optional[int] = None, until: Optional[int] = None) -> None:
        """Advance simulated time.

        Exactly one of ``for_ns`` / ``until`` must be given.
        """
        if (for_ns is None) == (until is None):
            raise ValueError("specify exactly one of for_ns / until")
        target = self.kernel.now + for_ns if for_ns is not None else until
        self.kernel.run(until=target)

    def fresh_rng(self, salt: int) -> np.random.Generator:
        """Derive an independent generator (stable across runs)."""
        return np.random.default_rng(np.random.SeedSequence([salt]))

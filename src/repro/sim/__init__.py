"""Operating-system substrate: discrete-event kernel, threads, scheduler
and workload models.

This package replaces the Linux 5.4 box of the paper.  It produces the
same observable artefacts the paper's kernel tracer consumes -- most
importantly the ``sched_switch`` event stream -- from a deterministic
simulation.
"""

from .kernel import EventHandle, HeapEventHandle, HeapKernel, MSEC, SEC, SimKernel, USEC
from .policies import (
    CompletelyFair,
    EarliestDeadlineFirst,
    POLICIES,
    POLICY_NAMES,
    PriorityRoundRobin,
    SchedulingPolicy,
    ShortestJobFirst,
    make_policy,
)
from .scheduler import (
    DEFAULT_TIMESLICE,
    IDLE_PID,
    SchedSwitch,
    SchedWakeup,
    Scheduler,
)
from .threads import (
    Block,
    Compute,
    SchedPolicy,
    SimThread,
    ThreadSchedParams,
    ThreadState,
    YieldCpu,
)
from .workload import (
    Constant,
    Empirical,
    Hooked,
    Mixture,
    Scaled,
    ShiftedLognormal,
    TruncatedNormal,
    Uniform,
    WorkloadModel,
    ms,
    us,
)

__all__ = [
    "EventHandle",
    "HeapEventHandle",
    "HeapKernel",
    "MSEC",
    "SEC",
    "SimKernel",
    "USEC",
    "DEFAULT_TIMESLICE",
    "IDLE_PID",
    "SchedSwitch",
    "SchedWakeup",
    "Scheduler",
    "CompletelyFair",
    "EarliestDeadlineFirst",
    "POLICIES",
    "POLICY_NAMES",
    "PriorityRoundRobin",
    "SchedulingPolicy",
    "ShortestJobFirst",
    "make_policy",
    "Block",
    "Compute",
    "SchedPolicy",
    "SimThread",
    "ThreadSchedParams",
    "ThreadState",
    "YieldCpu",
    "Constant",
    "Empirical",
    "Hooked",
    "Mixture",
    "Scaled",
    "ShiftedLognormal",
    "TruncatedNormal",
    "Uniform",
    "WorkloadModel",
    "ms",
    "us",
]

"""Execution-time (workload) models for simulated callbacks.

The paper measures callback execution times of real binaries; in this
reproduction each callback's CPU demand per invocation is drawn from a
:class:`WorkloadModel`.  Models are sampled with an externally supplied
``numpy`` generator so a single seed makes an entire experiment
deterministic.

All durations are integer nanoseconds.  Convenience converters
:func:`ms` and :func:`us` build readable specifications::

    model = TruncatedNormal(mean=ms(17.1), std=ms(1.3), low=ms(13.8), high=ms(19.9))
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Optional, Sequence, Tuple

import numpy as np


def ms(value: float) -> int:
    """Milliseconds -> nanoseconds."""
    return int(round(value * 1e6))


def us(value: float) -> int:
    """Microseconds -> nanoseconds."""
    return int(round(value * 1e3))


class WorkloadModel(abc.ABC):
    """A distribution of per-invocation execution times."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> int:
        """Draw one execution time in nanoseconds (non-negative)."""

    def bounds(self) -> Tuple[Optional[int], Optional[int]]:
        """Known (low, high) support bounds, if any.  Used by tests to
        validate measured-vs-designed execution times."""
        return (None, None)


class Constant(WorkloadModel):
    """Fixed execution time; used for measurement-accuracy validation
    (the paper runs SYN with constant loads to validate Alg. 2)."""

    def __init__(self, duration: int):
        if duration < 0:
            raise ValueError("duration must be >= 0")
        self.duration = int(duration)

    def sample(self, rng: np.random.Generator) -> int:
        return self.duration

    def bounds(self) -> Tuple[Optional[int], Optional[int]]:
        return (self.duration, self.duration)

    def __repr__(self) -> str:
        return f"Constant({self.duration})"


class Uniform(WorkloadModel):
    """Uniformly distributed execution time over [low, high]."""

    def __init__(self, low: int, high: int):
        if not 0 <= low <= high:
            raise ValueError(f"invalid uniform range [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def bounds(self) -> Tuple[Optional[int], Optional[int]]:
        return (self.low, self.high)

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class TruncatedNormal(WorkloadModel):
    """Normal distribution truncated (by resampling) to [low, high].

    The truncation models a bounded best-/worst-case execution path: the
    empirical maximum of many samples converges towards ``high``, which
    is exactly the mWCET-plateau behaviour shown in the paper's Fig. 4.
    """

    def __init__(self, mean: int, std: int, low: int, high: int):
        if std < 0:
            raise ValueError("std must be >= 0")
        if not 0 <= low <= high:
            raise ValueError(f"invalid range [{low}, {high}]")
        self.mean = int(mean)
        self.std = int(std)
        self.low = int(low)
        self.high = int(high)

    def sample(self, rng: np.random.Generator) -> int:
        if self.std == 0:
            return min(max(self.mean, self.low), self.high)
        for _ in range(64):
            value = int(rng.normal(self.mean, self.std))
            if self.low <= value <= self.high:
                return value
        return min(max(self.mean, self.low), self.high)

    def bounds(self) -> Tuple[Optional[int], Optional[int]]:
        return (self.low, self.high)

    def __repr__(self) -> str:
        return (
            f"TruncatedNormal(mean={self.mean}, std={self.std}, "
            f"low={self.low}, high={self.high})"
        )


class ShiftedLognormal(WorkloadModel):
    """``base + lognormal`` capped at ``high`` -- a heavy right tail.

    Suitable for iterative solvers such as NDT localization (cb6 in
    Table II) whose execution time occasionally spikes: rare samples near
    the cap make the measured WCET keep growing for many runs before it
    plateaus.
    """

    def __init__(self, base: int, scale: int, sigma: float, high: int):
        if base < 0 or scale <= 0 or sigma <= 0:
            raise ValueError("base >= 0, scale > 0, sigma > 0 required")
        if high <= base:
            raise ValueError("high must exceed base")
        self.base = int(base)
        self.scale = int(scale)
        self.sigma = float(sigma)
        self.high = int(high)

    def sample(self, rng: np.random.Generator) -> int:
        value = self.base + int(self.scale * rng.lognormal(0.0, self.sigma))
        return min(value, self.high)

    def bounds(self) -> Tuple[Optional[int], Optional[int]]:
        return (self.base, self.high)

    def __repr__(self) -> str:
        return (
            f"ShiftedLognormal(base={self.base}, scale={self.scale}, "
            f"sigma={self.sigma}, high={self.high})"
        )


class Mixture(WorkloadModel):
    """Weighted mixture of models (e.g. a common fast path plus a rare
    expensive mode)."""

    def __init__(self, components: Sequence[Tuple[float, WorkloadModel]]):
        if not components:
            raise ValueError("mixture needs at least one component")
        weights = [w for w, _ in components]
        if any(w < 0 for w in weights) or math.isclose(sum(weights), 0.0):
            raise ValueError("weights must be non-negative and sum > 0")
        total = sum(weights)
        self._probs = np.array([w / total for w in weights])
        #: Precomputed inverse-CDF table.  ``rng.choice(n, p=...)`` draws
        #: one uniform and inverts the cdf, but rebuilds and validates the
        #: cdf on every call (~30x the cost); doing the inversion here
        #: consumes the identical RNG stream, so traces stay bit-equal.
        cdf = np.cumsum(self._probs)
        self._cdf = cdf / cdf[-1]  # normalized exactly as rng.choice does
        self._models = [m for _, m in components]

    def sample(self, rng: np.random.Generator) -> int:
        index = int(self._cdf.searchsorted(rng.random(), side="right"))
        return self._models[min(index, len(self._models) - 1)].sample(rng)

    def bounds(self) -> Tuple[Optional[int], Optional[int]]:
        lows, highs = zip(*(m.bounds() for m in self._models))
        low = None if any(b is None for b in lows) else min(lows)
        high = None if any(b is None for b in highs) else max(highs)
        return (low, high)

    def __repr__(self) -> str:
        return f"Mixture({len(self._models)} components)"


class Empirical(WorkloadModel):
    """Resamples from a recorded set of execution times."""

    def __init__(self, samples: Sequence[int]):
        if not samples:
            raise ValueError("need at least one sample")
        if any(s < 0 for s in samples):
            raise ValueError("samples must be non-negative")
        self.samples = [int(s) for s in samples]

    def sample(self, rng: np.random.Generator) -> int:
        return self.samples[int(rng.integers(0, len(self.samples)))]

    def bounds(self) -> Tuple[Optional[int], Optional[int]]:
        return (min(self.samples), max(self.samples))

    def __repr__(self) -> str:
        return f"Empirical(n={len(self.samples)})"


class Scaled(WorkloadModel):
    """Multiply another model's samples by a factor.

    Used to vary a callback's computational load across runs (the paper
    changes SYN's load per run to study interference sensitivity).
    """

    def __init__(self, inner: WorkloadModel, factor: float):
        if factor < 0:
            raise ValueError("factor must be >= 0")
        self.inner = inner
        self.factor = float(factor)

    def sample(self, rng: np.random.Generator) -> int:
        return int(round(self.inner.sample(rng) * self.factor))

    def bounds(self) -> Tuple[Optional[int], Optional[int]]:
        low, high = self.inner.bounds()
        scale = lambda b: None if b is None else int(round(b * self.factor))
        return (scale(low), scale(high))

    def __repr__(self) -> str:
        return f"Scaled({self.inner!r}, {self.factor})"


class Hooked(WorkloadModel):
    """Delegates to a callable ``() -> WorkloadModel`` on every sample.

    Enables mode-dependent behaviour (e.g. city vs highway driving for
    the multi-mode DAG experiments) without rebuilding the application.
    """

    def __init__(self, hook: Callable[[], WorkloadModel]):
        self.hook = hook

    def sample(self, rng: np.random.Generator) -> int:
        return self.hook().sample(rng)

    def __repr__(self) -> str:
        return "Hooked(...)"

"""Pluggable scheduling policies for the simulated CPU scheduler.

The :class:`~repro.sim.scheduler.Scheduler` owns the *mechanism* of
dispatch -- installing threads on CPUs, accounting execution segments,
emitting ``sched_switch`` records -- while a :class:`SchedulingPolicy`
object owns the *policy* decisions:

* ready-queue maintenance (:meth:`SchedulingPolicy.enqueue` /
  :meth:`~SchedulingPolicy.remove` / :meth:`~SchedulingPolicy.pick`),
* placement and preemption-on-wake (:meth:`~SchedulingPolicy.find_cpu`,
  built on the per-policy :meth:`~SchedulingPolicy.preempts` order),
* timeslice policy (:meth:`~SchedulingPolicy.timeslice_for` /
  :meth:`~SchedulingPolicy.should_rotate`).

Four policies ship:

``priority``
    The default: strict priority preemption with round-robin
    timeslicing inside a priority band (FIFO threads run to the next
    blocking point).  This class is a *verbatim extraction* of the
    pre-refactor scheduler internals -- the ready ladder, the
    dirty-CPU victim scan, the rotation test -- and is pinned
    byte-identical to the frozen ``repro._legacy`` scheduler by
    ``tests/test_perf_equivalence.py``.  Do not "improve" it.
``psjf``
    Preemptive shortest-job-first: the runnable thread with the
    smallest expected remaining compute wins; a waking short job
    preempts a running long one.  Job length is the in-flight
    request's remaining nanoseconds when one exists, else a per-thread
    EWMA of observed Compute requests (seeded from
    ``ThreadSchedParams.expected_ns``).
``edf``
    Earliest-deadline-first: every wakeup arms an absolute deadline
    (wake time + the thread's relative deadline, e.g. its driving
    timer period); the runnable thread with the earliest deadline
    wins and preempts later-deadline threads on wake.
``cfs``
    A CFS/vruntime-style fair scheduler: each thread accrues virtual
    runtime scaled by a priority-derived weight; the minimum-vruntime
    runnable thread wins, wakers preempt only past a granularity
    margin, and the quantum shrinks as the ready queue grows.

All policies break ties by enqueue order (a monotonic sequence
number), so dispatch stays bit-for-bit deterministic for a fixed event
history.  Policy instances hold per-scheduler state and must not be
shared between schedulers.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Type, Union

from .kernel import MSEC
from .threads import SchedPolicy, SimThread

#: Fallback relative deadline (ns) for ``edf`` threads that carry no
#: ``ThreadSchedParams.deadline_ns`` -- generous enough to demote such
#: threads behind any real periodic deadline.
DEFAULT_DEADLINE_NS = 100 * MSEC

#: Fallback expected job length (ns) for ``psjf`` threads with no
#: declared ``expected_ns`` and no observed Compute history yet.
DEFAULT_EXPECTED_NS = MSEC

#: CFS weight of a priority-0 thread (Linux's NICE_0_LOAD).
NICE0_WEIGHT = 1024

#: A waking thread must lead the running one by this much vruntime to
#: preempt it (Linux's wakeup granularity, scaled down to our quanta).
CFS_WAKEUP_GRANULARITY_NS = MSEC

#: Lower bound on the CFS quantum however crowded the ready queue is.
CFS_MIN_GRANULARITY_NS = MSEC


class SchedulingPolicy:
    """Strategy interface consulted by the scheduler at every policy
    decision point.  Subclasses own the ready-queue representation."""

    #: Registry key; also what ``ScenarioSpec.policy`` names.
    name = "abstract"

    def __init__(self) -> None:
        self.scheduler = None  # set by attach()

    def attach(self, scheduler) -> None:
        """Bind to a scheduler and reset all per-run state."""
        if self.scheduler is not None and self.scheduler is not scheduler:
            raise RuntimeError(
                f"policy {self.name!r} is already attached to a scheduler; "
                "create one policy instance per Scheduler"
            )
        self.scheduler = scheduler

    # -- ready queue ---------------------------------------------------

    def enqueue(self, thread: SimThread, front: bool = False, woke: bool = False) -> None:
        """Add a runnable thread.  ``front`` requeues a preempted thread
        ahead of its peers; ``woke`` marks a NEW/BLOCKED -> READY
        transition (policies that re-arm deadlines or clamp vruntime
        hook it)."""
        raise NotImplementedError

    def remove(self, thread: SimThread) -> None:
        """Remove a specific queued thread (it is about to be placed)."""
        raise NotImplementedError

    def pick(self, cpu_id: int) -> Optional[SimThread]:
        """Pop the best runnable thread allowed on ``cpu_id``, or None."""
        raise NotImplementedError

    def placement_order(self) -> List[SimThread]:
        """Snapshot of queued threads in placement priority order, best
        first.  ``Scheduler._resched`` takes a fresh snapshot before
        every ladder sweep."""
        raise NotImplementedError

    # -- placement / preemption-on-wake --------------------------------

    def preempts(self, thread: SimThread, running: SimThread) -> bool:
        """True when a waking/ready ``thread`` should displace
        ``running`` from its CPU."""
        raise NotImplementedError

    def victim_key(self, running: SimThread):
        """Comparable badness of ``running`` as a preemption victim;
        among preemptable CPUs the maximum key loses its CPU."""
        raise NotImplementedError

    def find_cpu(self, thread: SimThread, dirty_only: bool = False):
        """Pick an idle allowed CPU, else the allowed CPU whose current
        thread is the worst victim ``thread`` may preempt.

        ``dirty_only`` restricts the scan to CPUs touched since the
        thread last failed to place (see ``Scheduler._resched``): clean
        CPUs rejected it in an identical state, so filtering them
        preserves the full scan's pick exactly.
        """
        victim = None
        victim_badness = None
        affinity = thread.affinity  # inlined can_run_on: one scan per placement
        for cpu in self.scheduler.cpus:
            if dirty_only and not cpu.dirty:
                continue
            if affinity is not None and cpu.id not in affinity:
                continue
            current = cpu.current
            if current is None:
                return cpu
            if self.preempts(thread, current):
                badness = self.victim_key(current)
                if victim is None or badness > victim_badness:
                    victim = cpu
                    victim_badness = badness
        return victim

    # -- timeslice -----------------------------------------------------

    def timeslice_for(self, thread: SimThread) -> Optional[int]:
        """Quantum (ns) to arm when ``thread`` is installed, or None to
        let it run to its next blocking point."""
        if thread.policy is SchedPolicy.FIFO:
            return None
        return self.scheduler.timeslice

    def should_rotate(self, cpu_id: int, thread: SimThread) -> bool:
        """At quantum expiry: requeue ``thread`` and re-pick?"""
        raise NotImplementedError

    # -- accounting hooks (default: no bookkeeping) --------------------

    def on_run(self, thread: SimThread, elapsed: int) -> None:
        """``thread`` just finished an execution segment of ``elapsed``
        nanoseconds on a CPU."""

    def on_compute(self, thread: SimThread, duration: int) -> None:
        """``thread`` just issued a Compute request of ``duration`` ns."""


class PriorityRoundRobin(SchedulingPolicy):
    """Strict priority preemption + round-robin inside a priority band.

    Verbatim extraction of the pre-refactor scheduler's ready ladder
    and victim scan; pinned byte-identical to ``repro._legacy`` by
    ``tests/test_perf_equivalence.py``.
    """

    name = "priority"

    def attach(self, scheduler) -> None:
        super().attach(scheduler)
        self._ready: Dict[int, Deque[SimThread]] = {}
        #: Priorities with a non-empty ready deque, kept ascending by
        #: bisect insertion.  Dispatch walks it in reverse instead of
        #: calling ``sorted(self._ready)`` on every pick -- same order,
        #: maintained incrementally.
        self._ready_prios: List[int] = []

    def enqueue(self, thread: SimThread, front: bool = False, woke: bool = False) -> None:
        dq = self._ready.get(thread.priority)
        if dq is None:
            dq = self._ready[thread.priority] = deque()
            insort(self._ready_prios, thread.priority)
        if front:
            dq.appendleft(thread)
        else:
            dq.append(thread)

    def _drop_ready_prio(self, prio: int) -> None:
        """Remove a priority whose deque just drained."""
        del self._ready[prio]
        self._ready_prios.remove(prio)

    def remove(self, thread: SimThread) -> None:
        dq = self._ready.get(thread.priority)
        if dq is not None and thread in dq:
            dq.remove(thread)
            if not dq:
                self._drop_ready_prio(thread.priority)

    def pick(self, cpu_id: int) -> Optional[SimThread]:
        for prio in reversed(self._ready_prios):
            dq = self._ready[prio]
            for thread in dq:
                affinity = thread.affinity  # inlined can_run_on (hot: every dispatch)
                if affinity is None or cpu_id in affinity:
                    dq.remove(thread)
                    if not dq:
                        self._drop_ready_prio(prio)
                    return thread
        return None

    def placement_order(self) -> List[SimThread]:
        order: List[SimThread] = []
        for prio in reversed(self._ready_prios):
            order.extend(self._ready[prio])
        return order

    def preempts(self, thread: SimThread, running: SimThread) -> bool:
        return running.priority < thread.priority

    def victim_key(self, running: SimThread) -> int:
        # The *lowest*-priority current thread is the best victim.
        return -running.priority

    def _best_ready_priority(self, cpu_id: int) -> Optional[int]:
        for prio in reversed(self._ready_prios):
            for t in self._ready[prio]:  # inlined can_run_on (fires per quantum expiry)
                if t.affinity is None or cpu_id in t.affinity:
                    return prio
        return None

    def should_rotate(self, cpu_id: int, thread: SimThread) -> bool:
        competitor = self._best_ready_priority(cpu_id)
        return competitor is not None and competitor >= thread.priority


class _KeyedPolicy(SchedulingPolicy):
    """Shared machinery for policies that order the ready queue by a
    single comparable key (smaller wins): a flat list of
    ``(key, seq, thread)`` entries.

    Keys are computed at enqueue time and are stable while a thread
    stays queued (estimates/deadlines/vruntime only change while a
    thread runs or wakes).  ``seq`` breaks ties deterministically in
    enqueue order; front-enqueues take descending negative sequence
    numbers so a preempted thread outranks equal-key peers, mirroring
    the default policy's ``appendleft``.
    """

    def attach(self, scheduler) -> None:
        super().attach(scheduler)
        self._queue: List[Tuple[int, int, SimThread]] = []
        self._seq = 0
        self._front_seq = 0

    # Subclass surface ------------------------------------------------

    def _key(self, thread: SimThread) -> int:
        """Current ordering key of ``thread`` (smaller runs first)."""
        raise NotImplementedError

    def _on_wake(self, thread: SimThread) -> None:
        """NEW/BLOCKED -> READY hook (re-arm deadline, clamp vruntime)."""

    # Queue machinery -------------------------------------------------

    def enqueue(self, thread: SimThread, front: bool = False, woke: bool = False) -> None:
        if woke:
            self._on_wake(thread)
        if front:
            self._front_seq -= 1
            seq = self._front_seq
        else:
            self._seq += 1
            seq = self._seq
        self._queue.append((self._key(thread), seq, thread))

    def remove(self, thread: SimThread) -> None:
        for i, entry in enumerate(self._queue):
            if entry[2] is thread:
                del self._queue[i]
                return

    def pick(self, cpu_id: int) -> Optional[SimThread]:
        best = None
        for entry in self._queue:
            affinity = entry[2].affinity  # inlined can_run_on
            if (affinity is None or cpu_id in affinity) and (
                best is None or entry[:2] < best[:2]
            ):
                best = entry
        if best is None:
            return None
        self._queue.remove(best)
        self._picked(best[0])
        return best[2]

    def _picked(self, key: int) -> None:
        """Hook: ``key`` just won a CPU (CFS tracks min vruntime here)."""

    def placement_order(self) -> List[SimThread]:
        return [entry[2] for entry in sorted(self._queue, key=lambda e: e[:2])]

    def preempts(self, thread: SimThread, running: SimThread) -> bool:
        return self._key(thread) < self._key(running)

    def victim_key(self, running: SimThread) -> int:
        # The latest-deadline / longest-job / largest-vruntime current
        # thread is the best victim.
        return self._key(running)

    def should_rotate(self, cpu_id: int, thread: SimThread) -> bool:
        for entry in self._queue:  # inlined can_run_on
            affinity = entry[2].affinity
            if affinity is None or cpu_id in affinity:
                return True
        return False


class ShortestJobFirst(_KeyedPolicy):
    """Preemptive shortest-job-first (schedsi's ``PSJF`` shape).

    The job-length estimate is the in-flight Compute request's
    remaining nanoseconds when one exists (the true remaining demand),
    else an EWMA of the thread's past Compute requests, seeded from
    ``ThreadSchedParams.expected_ns``.  No timeslicing: a running job
    yields the CPU only to a strictly shorter waking job.
    """

    name = "psjf"

    def attach(self, scheduler) -> None:
        super().attach(scheduler)
        self._estimate: Dict[int, int] = {}

    def _key(self, thread: SimThread) -> int:
        if thread.remaining > 0:
            return thread.remaining
        estimate = self._estimate.get(thread.pid)
        if estimate is not None:
            return estimate
        params = thread.sched_params
        if params is not None and params.expected_ns is not None:
            return params.expected_ns
        return DEFAULT_EXPECTED_NS

    def on_compute(self, thread: SimThread, duration: int) -> None:
        old = self._estimate.get(thread.pid)
        self._estimate[thread.pid] = duration if old is None else (old + duration) // 2

    def timeslice_for(self, thread: SimThread) -> Optional[int]:
        return None  # run until done/blocked or a shorter job wakes


class EarliestDeadlineFirst(_KeyedPolicy):
    """Earliest-deadline-first with deadlines re-armed on wakeup.

    Each NEW/BLOCKED -> READY transition sets the thread's absolute
    deadline to ``now + relative deadline``; the relative deadline
    comes from ``ThreadSchedParams.deadline_ns`` (scenario specs derive
    it from the node's driving timer period).  No timeslicing: the
    earliest deadline runs until it blocks or an earlier one wakes.
    """

    name = "edf"

    def attach(self, scheduler) -> None:
        super().attach(scheduler)
        self._deadline: Dict[int, int] = {}

    def _relative_deadline(self, thread: SimThread) -> int:
        params = thread.sched_params
        if params is not None and params.deadline_ns is not None:
            return params.deadline_ns
        return DEFAULT_DEADLINE_NS

    def _on_wake(self, thread: SimThread) -> None:
        self._deadline[thread.pid] = self.scheduler.kernel.now + self._relative_deadline(thread)

    def _key(self, thread: SimThread) -> int:
        deadline = self._deadline.get(thread.pid)
        if deadline is None:  # never woken through the queue yet
            deadline = self.scheduler.kernel.now + self._relative_deadline(thread)
            self._deadline[thread.pid] = deadline
        return deadline

    def timeslice_for(self, thread: SimThread) -> Optional[int]:
        return None  # run until done/blocked or an earlier deadline wakes


class CompletelyFair(_KeyedPolicy):
    """CFS/vruntime-style fair scheduler.

    Every execution segment advances the running thread's virtual
    runtime by ``elapsed * NICE0_WEIGHT / weight``, with the weight
    derived from the thread's priority (or pinned via
    ``ThreadSchedParams.weight``); the minimum-vruntime runnable
    thread runs next.  Waking threads are clamped to the queue's
    min-vruntime watermark (sleepers must not hoard credit) and
    preempt only when they lead the running thread by the wakeup
    granularity.  The quantum shrinks as the ready queue grows, with a
    floor at the minimum granularity.
    """

    name = "cfs"

    def attach(self, scheduler) -> None:
        super().attach(scheduler)
        self._vruntime: Dict[int, int] = {}
        self._weights: Dict[int, int] = {}
        self._min_vruntime = 0

    def _weight(self, thread: SimThread) -> int:
        params = thread.sched_params
        if params is not None and params.weight is not None:
            return params.weight
        weight = self._weights.get(thread.priority)
        if weight is None:
            # Linux's ~1.25x-per-nice-level ladder, clamped so the
            # convention of priority 100+rtprio for "real-time" threads
            # yields a huge-but-finite weight.
            step = min(max(thread.priority, -20), 40)
            weight = self._weights[thread.priority] = max(
                1, int(NICE0_WEIGHT * (1.25 ** step))
            )
        return weight

    def _key(self, thread: SimThread) -> int:
        vruntime = self._vruntime.get(thread.pid)
        if vruntime is None:
            vruntime = self._vruntime[thread.pid] = self._min_vruntime
        return vruntime

    def _on_wake(self, thread: SimThread) -> None:
        previous = self._vruntime.get(thread.pid, self._min_vruntime)
        self._vruntime[thread.pid] = max(previous, self._min_vruntime)

    def _picked(self, key: int) -> None:
        if key > self._min_vruntime:
            self._min_vruntime = key

    def on_run(self, thread: SimThread, elapsed: int) -> None:
        self._vruntime[thread.pid] = (
            self._vruntime.get(thread.pid, self._min_vruntime)
            + elapsed * NICE0_WEIGHT // self._weight(thread)
        )

    def preempts(self, thread: SimThread, running: SimThread) -> bool:
        return self._key(thread) + CFS_WAKEUP_GRANULARITY_NS < self._key(running)

    def timeslice_for(self, thread: SimThread) -> Optional[int]:
        if thread.policy is SchedPolicy.FIFO:
            return None
        quantum = self.scheduler.timeslice // (len(self._queue) + 1)
        return max(quantum, CFS_MIN_GRANULARITY_NS)


#: Registry of constructable policies, keyed by ``SchedulingPolicy.name``.
POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    cls.name: cls
    for cls in (PriorityRoundRobin, ShortestJobFirst, EarliestDeadlineFirst, CompletelyFair)
}

#: Stable, sorted policy-name tuple for CLI ``choices=`` and validation.
POLICY_NAMES = tuple(sorted(POLICIES))


def make_policy(policy: Union[str, SchedulingPolicy, None]) -> SchedulingPolicy:
    """Resolve a policy argument: None -> the default priority/RR
    policy, a name -> a fresh instance, an instance -> itself."""
    if policy is None:
        return PriorityRoundRobin()
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        cls = POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; expected one of {', '.join(POLICY_NAMES)}"
        ) from None
    return cls()

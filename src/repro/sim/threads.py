"""Simulated threads.

A :class:`SimThread` wraps a Python generator -- its *activity* -- that
yields scheduling requests to the CPU scheduler:

* ``yield Compute(ns)`` -- occupy a CPU for ``ns`` nanoseconds of pure
  execution time.  The scheduler may split the request across several
  *execution segments* if the thread is preempted; the request completes
  once the cumulative CPU time equals ``ns``.
* ``payload = yield Block()`` -- leave the CPU and sleep until another
  party calls :meth:`SimThread.wakeup`.  The payload passed to ``wakeup``
  is delivered as the result of the ``yield``.

Plain Python code executed between two ``yield`` points runs at a single
instant of simulated time *while the thread owns a CPU* -- exactly like
instructions between two preemption points on real hardware.  This is the
property the tracing substrate relies on: a probe firing inside such code
observes the timestamp at which the traced thread is actually running.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Generator, Iterable, Optional, Set


class Compute:
    """Request ``duration`` nanoseconds of CPU time (preemptible)."""

    __slots__ = ("duration",)

    def __init__(self, duration: int):
        if duration < 0:
            raise ValueError(f"negative compute duration: {duration}")
        self.duration = int(duration)

    def __repr__(self) -> str:
        return f"Compute({self.duration})"


class Block:
    """Request to sleep until :meth:`SimThread.wakeup` is called."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Block()"


class YieldCpu:
    """Voluntarily relinquish the CPU but stay runnable (sched_yield)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "YieldCpu()"


Request = Any
Activity = Generator[Request, Any, None]


class ThreadState(enum.Enum):
    """Lifecycle states, mirroring the Linux task states we care about."""

    NEW = "new"
    READY = "ready"  # runnable, waiting for a CPU
    RUNNING = "running"  # currently owns a CPU
    BLOCKED = "blocked"  # sleeping, waiting for a wakeup
    DEAD = "dead"  # activity exhausted

    def sched_char(self) -> str:
        """Single-letter state code as shown by ``sched_switch``."""
        return _SCHED_CHARS[self]


#: Hot-loop lookup for :meth:`ThreadState.sched_char` (one dict, not a
#: dict literal per call -- sched_char fires on every context switch).
_SCHED_CHARS = {
    ThreadState.READY: "R",
    ThreadState.RUNNING: "R",
    ThreadState.BLOCKED: "S",
    ThreadState.DEAD: "X",
    ThreadState.NEW: "R",
}


class SchedPolicy(enum.Enum):
    """Scheduling policies supported by the simulated scheduler."""

    OTHER = "SCHED_OTHER"  # timesliced, priority 0..39 band
    FIFO = "SCHED_FIFO"  # real-time, run-to-completion within priority
    RR = "SCHED_RR"  # real-time, timesliced within priority


@dataclasses.dataclass(frozen=True)
class ThreadSchedParams:
    """Per-thread parameters consumed by the pluggable scheduling
    policies (:mod:`repro.sim.policies`).  All fields are optional --
    a policy falls back to its own defaults for anything unset, so the
    same thread description runs under every policy.

    deadline_ns:
        Relative deadline for ``edf``: each wakeup arms an absolute
        deadline of ``wake time + deadline_ns``.  Scenario specs derive
        it from the node's driving timer period.
    expected_ns:
        Expected compute-request length for ``psjf``, used until the
        policy has observed real requests to average.
    weight:
        Explicit CFS load weight, overriding the priority-derived one.
    """

    deadline_ns: Optional[int] = None
    expected_ns: Optional[int] = None
    weight: Optional[int] = None


class SimThread:
    """A schedulable thread of execution.

    Parameters
    ----------
    pid:
        Unique identifier; also used as the thread's PID/TID in traces.
    activity:
        Generator yielding :class:`Compute` / :class:`Block` requests.
    priority:
        Higher values preempt lower ones.  By convention SCHED_OTHER
        threads use 0..39 and real-time threads use 100 + rtprio, so any
        real-time thread outranks any fair-share thread.
    policy:
        Timeslicing behaviour; see :class:`SchedPolicy`.
    affinity:
        Set of CPU ids the thread may run on.  ``None`` means all CPUs.
    name:
        Human-readable label (``comm`` in Linux parlance).
    sched_params:
        Optional :class:`ThreadSchedParams` consumed by the pluggable
        scheduling policies (deadline, expected job length, weight).
    """

    def __init__(
        self,
        pid: int,
        activity: Activity,
        priority: int = 0,
        policy: SchedPolicy = SchedPolicy.OTHER,
        affinity: Optional[Iterable[int]] = None,
        name: str = "",
        sched_params: Optional[ThreadSchedParams] = None,
    ):
        if pid <= 0:
            raise ValueError("pid must be positive (0 is the idle/swapper pid)")
        self.pid = pid
        self.name = name or f"thread-{pid}"
        self.activity = activity
        self.priority = priority
        self.policy = policy
        self.sched_params = sched_params
        self.affinity: Optional[Set[int]] = set(affinity) if affinity is not None else None
        self.state = ThreadState.NEW

        #: Remaining nanoseconds of the in-flight Compute request.
        self.remaining: int = 0
        #: Payload queued by a wakeup that raced with a not-yet-blocked thread.
        self._pending_wakeup = False
        self._wakeup_payload: Any = None
        #: CPU the thread currently runs on (None unless RUNNING).
        self.cpu: Optional[int] = None
        #: Cumulative CPU time consumed, for accounting/validation.
        self.cpu_time: int = 0
        #: Value delivered to the activity at the next resume (wakeup payload).
        self.resume_value: Any = None
        self._started = False

    def can_run_on(self, cpu_id: int) -> bool:
        """True when the affinity mask allows ``cpu_id``."""
        return self.affinity is None or cpu_id in self.affinity

    def advance(self, value: Any = None) -> Optional[Request]:
        """Resume the activity generator, returning the next request.

        Returns ``None`` when the activity is exhausted (thread exits).
        The started-path returns inside the ``try`` so the common case
        (every resume after the first) is one branch + one ``send``.
        """
        try:
            if self._started:
                return self.activity.send(value)
            self._started = True
            return next(self.activity)
        except StopIteration:
            return None

    def queue_wakeup(self, payload: Any = None) -> None:
        """Record a wakeup; consumed by the scheduler on next Block."""
        self._pending_wakeup = True
        self._wakeup_payload = payload

    def consume_wakeup(self) -> Any:
        """Pop the queued wakeup payload (scheduler internal)."""
        payload = self._wakeup_payload
        self._pending_wakeup = False
        self._wakeup_payload = None
        return payload

    @property
    def has_pending_wakeup(self) -> bool:
        return self._pending_wakeup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimThread(pid={self.pid}, name={self.name!r}, "
            f"prio={self.priority}, state={self.state.value})"
        )

"""Discrete-event simulation kernel.

The kernel is the clock of the simulated machine.  All other substrates
(the CPU scheduler in :mod:`repro.sim.scheduler`, the DDS bus in
:mod:`repro.ros2.dds`, ROS2 timers, ...) schedule work on a single shared
:class:`SimKernel` instance.  Simulated time is an integer number of
nanoseconds, mirroring ``CLOCK_MONOTONIC`` on the Linux box used in the
paper.

Events are plain callables ordered by ``(time, priority, sequence)``.  The
sequence number makes ordering of same-timestamp events deterministic
(FIFO), which in turn makes every experiment in this repository
reproducible bit-for-bit.

Two kernels share that contract:

:class:`SimKernel` (the default) is slab-backed.  Event state lives in
parallel arrays (``_slot_seq`` / ``_slot_fn`` / ``_slot_args``) indexed
by a recycled *slot* number, and the heap holds bare ``(time, priority,
seq, slot)`` integer tuples -- no per-event handle object on the hot
path.  The high-rate producers (scheduler timers, DDS delivery) use the
token API:

* ``token = kernel.post_after(delay, fn, args)`` -- schedule without
  allocating a closure or a handle; ``args`` are stored in the slab and
  splatted at fire time;
* ``kernel.cancel(token)`` -- O(1) cancel.  The token packs ``(seq,
  slot)``; the sequence number doubles as a *generation tag*, so a stale
  token (the event already fired and its slot was recycled) is a
  harmless no-op.  This is the behaviour preemption logic in the
  scheduler relies on.

``schedule_at`` / ``schedule_after`` remain for casual users and return
a slim :class:`EventHandle` view over the same slab.

:class:`HeapKernel` is the original handle-per-event implementation,
kept verbatim as an executable reference: ``World(kernel_cls=HeapKernel)``
runs any experiment on it, and the equivalence suite pins both kernels
to byte-identical traces.

Both kernels count cancellations (dominated by the scheduler's
per-dispatch timeslice timers) and, once cancelled entries exceed half
the queue, compact the heap in one O(n) pass + heapify instead of
leaking dead weight through pops.  The rebuilt heap holds the same
pending set under the same total order, so event delivery is unchanged
bit for bit.  Queues shorter than ``compact_min_queue`` (a constructor
parameter, default ``_COMPACT_MIN_QUEUE``) are never compacted -- the
O(n) rebuild would cost more than popping the few cancelled entries
lazily.  ``kernel.cancelled`` / ``kernel.compactions`` expose lifetime
counters for both.
"""

from __future__ import annotations

from functools import partial
from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

#: One microsecond / millisecond / second expressed in kernel ticks (ns).
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000

#: Default compaction floor (see ``compact_min_queue``).
_COMPACT_MIN_QUEUE = 64

#: Token layout: low ``_SLOT_BITS`` bits carry the slot index, the rest
#: the sequence number.  2**20 simultaneously pending events is ~3
#: orders of magnitude above anything the benches reach.
_SLOT_BITS = 20
_SLOT_MASK = (1 << _SLOT_BITS) - 1
_MAX_SLOTS = 1 << _SLOT_BITS


class EventHandle:
    """Cancellation view returned by :meth:`SimKernel.schedule_at` /
    :meth:`SimKernel.schedule_after`.

    A thin ``(kernel, slot, seq)`` triple over the kernel's slab.
    Cancelling twice, or after the event fired, is a harmless no-op.
    """

    __slots__ = ("time", "priority", "seq", "_slot", "_kernel")

    def __init__(self, time: int, priority: int, seq: int, slot: int, kernel: "SimKernel"):
        self.time = time
        self.priority = priority
        self.seq = seq
        self._slot = slot
        self._kernel = kernel

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._kernel._cancel_slot(self._slot, self.seq)

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return self._kernel._slot_seq[self._slot] == self.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if self.pending else "done"
        return f"EventHandle(t={self.time}, seq={self.seq}, {state})"


#: Heap entry: the comparison key inline, the slab slot along for the
#: ride.  ``seq`` is unique so heap sifts never compare the slot.
_Entry = Tuple[int, int, int, int]


class SimKernel:
    """Deterministic discrete-event simulation kernel (slab-backed).

    Parameters
    ----------
    start:
        Initial clock value (ns).
    compact_min_queue:
        Queues shorter than this are never compacted; raise it to trade
        memory for fewer O(n) rebuilds, lower it (>= 0) to compact
        aggressively.

    Example
    -------
    >>> k = SimKernel()
    >>> fired = []
    >>> _ = k.schedule_at(10, lambda: fired.append(k.now))
    >>> _ = k.schedule_after(5, lambda: fired.append(k.now))
    >>> k.run()
    >>> fired
    [5, 10]
    """

    def __init__(self, start: int = 0, compact_min_queue: int = _COMPACT_MIN_QUEUE) -> None:
        if start < 0:
            raise ValueError("start time must be >= 0")
        if compact_min_queue < 0:
            raise ValueError("compact_min_queue must be >= 0")
        self._now = start
        self._queue: List[_Entry] = []
        self._seq = 0
        self._running = False
        self.compact_min_queue = compact_min_queue
        #: Lifetime counters (cancels observed / heap compactions run).
        self.cancelled = 0
        self.compactions = 0
        #: Cancelled-but-unpopped entries currently in the queue.
        self._cancelled_in_queue = 0
        # The slab: parallel arrays indexed by slot.  ``_slot_seq[slot]``
        # is the sequence number of the occupying event, or 0 when the
        # slot is free (real sequence numbers start at 1), which makes
        # the staleness test a single int compare.
        self._slot_seq: List[int] = []
        self._slot_fn: List[Optional[Callable]] = []
        self._slot_args: List[Any] = []
        self._free_slots: List[int] = []

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- slab plumbing -------------------------------------------------------

    def _alloc_slot(self, seq: int, fn: Callable, args: tuple) -> int:
        free = self._free_slots
        if free:
            slot = free.pop()
            self._slot_seq[slot] = seq
            self._slot_fn[slot] = fn
            self._slot_args[slot] = args
        else:
            slot = len(self._slot_seq)
            if slot >= _MAX_SLOTS:
                raise RuntimeError(
                    f"more than {_MAX_SLOTS} events pending at once"
                )
            self._slot_seq.append(seq)
            self._slot_fn.append(fn)
            self._slot_args.append(args)
        return slot

    def _cancel_slot(self, slot: int, seq: int) -> bool:
        """Cancel the event in ``slot`` iff it is still generation ``seq``."""
        slot_seq = self._slot_seq
        if slot_seq[slot] != seq:
            return False  # already fired or cancelled: no-op
        slot_seq[slot] = 0
        self._slot_fn[slot] = None
        self._slot_args[slot] = None
        self._free_slots.append(slot)
        self.cancelled += 1
        self._cancelled_in_queue += 1
        queue = self._queue
        # Compact once dead weight wins.  This runs inside cancel -- any
        # caller holding a binding to the old queue list must rebind.
        if (
            len(queue) >= self.compact_min_queue
            and self._cancelled_in_queue * 2 > len(queue)
        ):
            self._queue = [e for e in queue if slot_seq[e[3]] == e[2]]
            heapify(self._queue)
            self._cancelled_in_queue = 0
            self.compactions += 1
        return True

    # -- scheduling entry points ---------------------------------------------

    def schedule_at(
        self, time: int, fn: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Schedule ``fn`` to run at absolute time ``time``.

        ``priority`` breaks ties between events with equal timestamps;
        lower values run first.  Scheduling in the past raises
        ``ValueError`` -- a kernel never travels backwards.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} (now={self._now}): time is in the past"
            )
        self._seq = seq = self._seq + 1
        slot = self._alloc_slot(seq, fn, ())
        heappush(self._queue, (time, priority, seq, slot))
        return EventHandle(time, priority, seq, slot, self)

    def schedule_after(
        self, delay: int, fn: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Schedule ``fn`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        time = self._now + delay
        self._seq = seq = self._seq + 1
        slot = self._alloc_slot(seq, fn, ())
        heappush(self._queue, (time, priority, seq, slot))
        return EventHandle(time, priority, seq, slot, self)

    def post_after(
        self, delay: int, fn: Callable, args: tuple = (), priority: int = 0
    ) -> int:
        """Hot-path scheduling: no closure, no handle object.

        ``fn(*args)`` runs ``delay`` ns from now; the returned int token
        cancels via :meth:`cancel`.  Unlike ``schedule_after`` +
        ``functools.partial`` this allocates nothing but a heap tuple --
        the callable and its arguments park in the slab.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        time = self._now + delay
        self._seq = seq = self._seq + 1
        free = self._free_slots
        if free:
            slot = free.pop()
            self._slot_seq[slot] = seq
            self._slot_fn[slot] = fn
            self._slot_args[slot] = args
        else:
            slot = self._alloc_slot(seq, fn, args)
        heappush(self._queue, (time, priority, seq, slot))
        return (seq << _SLOT_BITS) | slot

    def cancel(self, token: int) -> bool:
        """Cancel the event behind ``token``.

        Returns True if the event was pending.  A token whose event
        already fired (or was cancelled) is detected by the generation
        tag and ignored, even if the slot has been recycled since.
        """
        return self._cancel_slot(token & _SLOT_MASK, token >> _SLOT_BITS)

    # -- introspection -------------------------------------------------------

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        slot_seq = self._slot_seq
        return sum(1 for e in self._queue if slot_seq[e[3]] == e[2])

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        queue = self._queue
        slot_seq = self._slot_seq
        while queue:
            time, _prio, seq, slot = heappop(queue)
            if slot_seq[slot] != seq:
                self._cancelled_in_queue -= 1
                continue
            fn = self._slot_fn[slot]
            args = self._slot_args[slot]
            slot_seq[slot] = 0
            self._slot_fn[slot] = None
            self._slot_args[slot] = None
            self._free_slots.append(slot)
            self._now = time
            if args:
                fn(*args)
            else:
                fn()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` events have fired.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier, so back-to-back ``run``
        calls observe a monotonically advancing clock.  Returns the number
        of events that fired.
        """
        if self._running:
            raise RuntimeError("SimKernel.run() is not reentrant")
        self._running = True
        fired = 0
        pop = heappop
        # The slab lists are mutated in place, never rebound: hoist them.
        slot_seq = self._slot_seq
        slot_fn = self._slot_fn
        slot_args = self._slot_args
        free = self._free_slots
        # Open-ended runs use an unreachable horizon so the loop does a
        # single int compare per event instead of a None check + compare.
        limit = until if until is not None else 0x7FFF_FFFF_FFFF_FFFF
        try:
            # Fused peek+step: one pass over the heap head per event.
            # ``fired != max_events`` covers max_events=None (an int
            # never equals None).  The queue binding is refreshed every
            # iteration because a compaction (triggered by a cancel
            # inside ``fn``) replaces the list.
            while fired != max_events:
                queue = self._queue
                while queue:
                    head = queue[0]
                    if slot_seq[head[3]] == head[2]:
                        break
                    pop(queue)
                    self._cancelled_in_queue -= 1
                if not queue:
                    break
                if head[0] > limit:
                    break
                pop(queue)
                slot = head[3]
                fn = slot_fn[slot]
                args = slot_args[slot]
                # Free the slot *before* calling fn: the callback may
                # schedule new events into it, and seq uniqueness keeps
                # any outstanding tokens for this event stale.
                slot_seq[slot] = 0
                slot_fn[slot] = None
                slot_args[slot] = None
                free.append(slot)
                self._now = head[0]
                if args:
                    fn(*args)
                else:
                    fn()
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimKernel(now={self._now}, pending={self.pending_count()})"


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------


class HeapEventHandle:
    """Handle returned by :class:`HeapKernel` scheduling calls.

    Carries its own state (the pre-slab design): cancellation flips a
    flag the run loop re-checks on pop.
    """

    __slots__ = ("time", "priority", "seq", "fn", "cancelled", "_kernel")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        fn: Callable[[], None],
        kernel: Optional["HeapKernel"] = None,
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn: Optional[Callable[[], None]] = fn
        self.cancelled = False
        self._kernel = kernel

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        was_pending = self.fn is not None and not self.cancelled
        self.cancelled = True
        self.fn = None
        # Notify only after flipping the state: a compaction triggered
        # by this notification must see the handle as non-pending, or
        # the dead entry survives the rebuild and the counter drifts.
        if was_pending and self._kernel is not None:
            self._kernel._note_cancelled()

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and self.fn is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"HeapEventHandle(t={self.time}, seq={self.seq}, {state})"


class HeapKernel:
    """The pre-slab kernel: one :class:`HeapEventHandle` per event.

    Behaviour-identical to :class:`SimKernel` (the equivalence suite
    pins both to byte-identical traces); kept as the readable reference
    and as the cross-check target -- run any experiment on it via
    ``World(kernel_cls=HeapKernel)``.  The token API is provided as a
    thin shim over handles so callers are kernel-agnostic.
    """

    def __init__(self, start: int = 0, compact_min_queue: int = _COMPACT_MIN_QUEUE) -> None:
        if start < 0:
            raise ValueError("start time must be >= 0")
        if compact_min_queue < 0:
            raise ValueError("compact_min_queue must be >= 0")
        self._now = start
        self._queue: List[Tuple[int, int, int, HeapEventHandle]] = []
        self._seq = 0
        self._running = False
        self.compact_min_queue = compact_min_queue
        self.cancelled = 0
        self.compactions = 0
        self._cancelled_in_queue = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def schedule_at(
        self, time: int, fn: Callable[[], None], priority: int = 0
    ) -> HeapEventHandle:
        """Schedule ``fn`` to run at absolute time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} (now={self._now}): time is in the past"
            )
        self._seq += 1
        handle = HeapEventHandle(time, priority, self._seq, fn, self)
        heappush(self._queue, (time, priority, self._seq, handle))
        return handle

    def schedule_after(
        self, delay: int, fn: Callable[[], None], priority: int = 0
    ) -> HeapEventHandle:
        """Schedule ``fn`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        time = self._now + delay
        self._seq += 1
        handle = HeapEventHandle(time, priority, self._seq, fn, self)
        heappush(self._queue, (time, priority, self._seq, handle))
        return handle

    def post_after(
        self, delay: int, fn: Callable, args: tuple = (), priority: int = 0
    ) -> HeapEventHandle:
        """Token-API shim: the handle itself is the token."""
        if args:
            fn = partial(fn, *args)
        return self.schedule_after(delay, fn, priority)

    def cancel(self, token: HeapEventHandle) -> bool:
        """Token-API shim over :meth:`HeapEventHandle.cancel`."""
        was_pending = token.pending
        token.cancel()
        return was_pending

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for entry in self._queue if entry[3].pending)

    def _note_cancelled(self) -> None:
        """A pending handle was cancelled; compact once dead weight wins."""
        self.cancelled += 1
        self._cancelled_in_queue += 1
        if (
            len(self._queue) >= self.compact_min_queue
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._queue = [entry for entry in self._queue if entry[3].pending]
            heapify(self._queue)
            self._cancelled_in_queue = 0
            self.compactions += 1

    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        queue = self._queue
        while queue:
            handle = heappop(queue)[3]
            fn = handle.fn
            if fn is None or handle.cancelled:
                self._cancelled_in_queue -= 1
                continue
            handle.fn = None
            self._now = handle.time
            fn()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` events have fired."""
        if self._running:
            raise RuntimeError("HeapKernel.run() is not reentrant")
        self._running = True
        fired = 0
        pop = heappop
        try:
            while fired != max_events:
                queue = self._queue
                while queue and not queue[0][3].pending:
                    pop(queue)
                    self._cancelled_in_queue -= 1
                if not queue:
                    break
                if until is not None and queue[0][0] > until:
                    break
                handle = pop(queue)[3]
                fn = handle.fn
                handle.fn = None
                self._now = handle.time
                fn()
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HeapKernel(now={self._now}, pending={self.pending_count()})"

"""Preemptive multi-CPU scheduler for simulated threads.

The scheduler reproduces the slice of Linux scheduling behaviour the paper
depends on:

* per-CPU dispatch with CPU affinity masks,
* strict priority preemption (a waking higher-priority thread immediately
  preempts a lower-priority one on an allowed CPU),
* round-robin timeslicing between equal-priority ``SCHED_OTHER`` /
  ``SCHED_RR`` threads (``SCHED_FIFO`` threads run to the next blocking
  point),
* emission of ``sched_switch`` records -- (CPU, previous thread and its
  state, next thread) -- on every context switch, and ``sched_wakeup``
  records when a sleeping thread is woken.

Execution-time measurement in the paper (Alg. 2) reconstructs a callback's
CPU demand purely from the ``sched_switch`` stream; this module produces
that stream with the same fields Linux exposes.

Threads execute generator *activities* (see :mod:`repro.sim.threads`).
Context-switch points exist only at ``yield`` boundaries, which mirrors a
kernel with preemption points: Python code between two yields runs
atomically at one simulated instant while the thread owns a CPU.

The scheduler implements dispatch *mechanism* only; every policy
decision -- which thread runs next, who gets preempted on a wakeup,
whether a quantum is armed -- is delegated to a pluggable
:class:`~repro.sim.policies.SchedulingPolicy` strategy object.  The
default :class:`~repro.sim.policies.PriorityRoundRobin` policy
reproduces the historical hardwired behaviour byte-for-byte (pinned by
``tests/test_perf_equivalence.py``).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Union

from .kernel import MSEC, SimKernel
from .policies import SchedulingPolicy, make_policy
from .threads import (
    _SCHED_CHARS,
    Activity,
    Block,
    Compute,
    SchedPolicy,
    SimThread,
    ThreadSchedParams,
    ThreadState,
    YieldCpu,
)

#: PID used for the idle task, as on Linux.
IDLE_PID = 0

#: Default round-robin quantum (Linux RR default is wider; 4 ms keeps
#: plenty of preemption in the evaluation scenarios).
DEFAULT_TIMESLICE = 4 * MSEC


class SchedSwitch(NamedTuple):
    """A ``sched_switch`` record, field-for-field what the paper's kernel
    tracer reads from the tracepoint (Sec. III-B).

    A ``NamedTuple``: one record is built per context switch inside the
    simulation hot loop, where tuple construction beats a frozen
    dataclass's per-field ``object.__setattr__`` severalfold.
    """

    ts: int
    cpu: int
    prev_pid: int
    prev_comm: str
    prev_prio: int
    prev_state: str
    next_pid: int
    next_comm: str
    next_prio: int


class SchedWakeup(NamedTuple):
    """A ``sched_wakeup`` record (listed as future work in the paper;
    used here by the waiting-time analysis extension)."""

    ts: int
    cpu: Optional[int]
    pid: int
    comm: str
    prio: int


class _Cpu:
    __slots__ = (
        "id", "current", "dispatch_time", "completion", "completion_time",
        "slice_handle", "slice_deadline", "busy_time", "dirty", "swapper_comm",
    )

    def __init__(self, cpu_id: int):
        self.id = cpu_id
        self.current: Optional[SimThread] = None
        self.dispatch_time = 0
        #: Idle-task comm, prebuilt: formatting it per idle switch costs
        #: more than the rest of the sched_switch record combined.
        self.swapper_comm = f"swapper/{cpu_id}"
        #: Kernel tokens (or legacy handles) for the armed completion /
        #: quantum timers; None when unarmed.
        self.completion: Optional[Any] = None
        #: Absolute fire time of the armed completion (valid while
        #: ``completion`` is set); lets the lazy quantum check whether a
        #: compute segment crosses the slice deadline.
        self.completion_time = 0
        self.slice_handle: Optional[Any] = None
        #: Absolute expiry of the current thread's quantum, tracked even
        #: while no slice event is armed (see Scheduler._install for the
        #: lazy-arming rules); None for untimesliced (FIFO) threads.
        self.slice_deadline: Optional[int] = None
        self.busy_time = 0
        #: Touched by a placement during the current ``_resched`` call
        #: (see there); only dirty CPUs can newly accept a thread that
        #: already failed to place in the same call.
        self.dirty = False


class Scheduler:
    """Multi-CPU preemptive priority scheduler.

    Parameters
    ----------
    kernel:
        The simulation kernel providing the clock and event queue.
    num_cpus:
        Number of CPUs in the machine.
    timeslice:
        Round-robin quantum (ns) for ``SCHED_OTHER`` / ``SCHED_RR``.
    policy:
        Scheduling policy: a :class:`~repro.sim.policies.SchedulingPolicy`
        instance, a registry name (``"priority"``, ``"psjf"``, ``"edf"``,
        ``"cfs"``), or None for the default priority/RR policy.
    """

    def __init__(
        self,
        kernel: SimKernel,
        num_cpus: int = 4,
        timeslice: int = DEFAULT_TIMESLICE,
        first_pid: int = 1,
        policy: Union[str, SchedulingPolicy, None] = None,
    ):
        if num_cpus < 1:
            raise ValueError("need at least one CPU")
        if timeslice <= 0:
            raise ValueError("timeslice must be positive")
        if first_pid < 1:
            raise ValueError("first_pid must be >= 1 (0 is the idle task)")
        self.kernel = kernel
        self.cpus = [_Cpu(i) for i in range(num_cpus)]
        self.timeslice = timeslice
        self.policy = make_policy(policy)
        self.policy.attach(self)
        self._threads: Dict[int, SimThread] = {}
        self._next_pid = first_pid
        self._switch_hooks: List[Callable[[SchedSwitch], None]] = []
        self._wakeup_hooks: List[Callable[[SchedWakeup], None]] = []
        self._resched_pending = False
        self._advancing: Optional[SimThread] = None
        self.context_switches = 0
        # Timer fast path: the slab kernel's token API schedules the
        # per-dispatch completion/quantum timers without allocating a
        # ``functools.partial`` per dispatch.  Pre-token kernels (the
        # frozen legacy kernel) are adapted through handles.
        post_after = getattr(kernel, "post_after", None)
        if post_after is not None:
            self._post_after: Callable = post_after
            self._cancel_timer: Callable = kernel.cancel
        else:
            schedule_after = kernel.schedule_after

            def _post_after(delay: int, fn: Callable, args: tuple = ()):
                return schedule_after(delay, partial(fn, *args) if args else fn)

            self._post_after = _post_after
            self._cancel_timer = lambda handle: handle.cancel()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def num_cpus(self) -> int:
        return len(self.cpus)

    @property
    def current_thread(self) -> Optional[SimThread]:
        """The thread whose activity code is executing right now.

        Probes attached to middleware functions use this to resolve the
        PID of the traced process, like ``bpf_get_current_pid_tgid``.
        """
        return self._advancing

    def threads(self) -> List[SimThread]:
        return list(self._threads.values())

    def get_thread(self, pid: int) -> SimThread:
        return self._threads[pid]

    def allocate_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def spawn(
        self,
        activity: Activity,
        priority: int = 0,
        policy: SchedPolicy = SchedPolicy.OTHER,
        affinity: Optional[List[int]] = None,
        name: str = "",
        start: int = 0,
        pid: Optional[int] = None,
        sched_params: Optional[ThreadSchedParams] = None,
    ) -> SimThread:
        """Create a thread and make it runnable at time ``start``."""
        if affinity is not None:
            bad = [c for c in affinity if not 0 <= c < self.num_cpus]
            if bad:
                raise ValueError(f"affinity CPUs out of range: {bad}")
        if pid is None:
            pid = self.allocate_pid()
        elif pid in self._threads:
            raise ValueError(f"pid {pid} already in use")
        else:
            self._next_pid = max(self._next_pid, pid + 1)
        thread = SimThread(
            pid=pid,
            activity=activity,
            priority=priority,
            policy=policy,
            affinity=affinity,
            name=name,
            sched_params=sched_params,
        )
        self._threads[pid] = thread

        def _start() -> None:
            if thread.state == ThreadState.NEW:
                self._enqueue_ready(thread)
                self._request_resched()

        self.kernel.schedule_at(max(start, self.kernel.now), _start)
        return thread

    def wakeup(self, thread: Union[SimThread, int], payload: Any = None) -> None:
        """Wake ``thread``; delivers ``payload`` to its pending ``Block``.

        Waking a runnable thread queues the payload for its *next* block
        (condition-variable semantics: wakeups never get lost but do
        coalesce).  Waking a dead thread is ignored.
        """
        if isinstance(thread, int):
            thread = self._threads[thread]
        state = thread.state
        if state is ThreadState.BLOCKED:
            thread.resume_value = payload
            if self._wakeup_hooks:
                self._emit_wakeup(thread)
            # Inlined _enqueue_ready + _request_resched (the hottest
            # wakeup path: every delivery and timer tick lands here).
            thread.state = ThreadState.READY
            self.policy.enqueue(thread, front=False, woke=True)
            if not self._resched_pending:
                self._resched_pending = True
                self._post_after(0, self._resched)
        elif state is not ThreadState.DEAD:
            # Inlined queue_wakeup (hot: wakeups racing a runnable
            # thread coalesce here).
            thread._pending_wakeup = True
            thread._wakeup_payload = payload

    def on_sched_switch(self, hook: Callable[[SchedSwitch], None]) -> Callable[[], None]:
        """Register a ``sched_switch`` tracepoint consumer.

        Returns a detach function, mirroring tracepoint attach/detach.
        """
        self._switch_hooks.append(hook)
        return lambda: self._switch_hooks.remove(hook)

    def on_sched_wakeup(self, hook: Callable[[SchedWakeup], None]) -> Callable[[], None]:
        self._wakeup_hooks.append(hook)
        return lambda: self._wakeup_hooks.remove(hook)

    def utilization(self, over: Optional[int] = None) -> List[float]:
        """Fraction of time each CPU spent busy (finished segments only)."""
        horizon = over if over is not None else self.kernel.now
        if horizon <= 0:
            return [0.0 for _ in self.cpus]
        return [min(1.0, cpu.busy_time / horizon) for cpu in self.cpus]

    # ------------------------------------------------------------------
    # Ready queue management (representation owned by the policy)
    # ------------------------------------------------------------------

    def _enqueue_ready(self, thread: SimThread, front: bool = False) -> None:
        # NEW/BLOCKED -> READY is a genuine wakeup; READY/RUNNING ->
        # READY is a requeue (preemption, yield, slice rotation).
        woke = thread.state in (ThreadState.NEW, ThreadState.BLOCKED)
        thread.state = ThreadState.READY
        self.policy.enqueue(thread, front=front, woke=woke)

    # ------------------------------------------------------------------
    # Rescheduling (the "IPI" path)
    # ------------------------------------------------------------------

    def _request_resched(self) -> None:
        if not self._resched_pending:
            self._resched_pending = True
            self._post_after(0, self._resched)

    def _resched(self) -> None:
        """Place ready threads, one ladder sweep per placement.

        Within one call only a placement (and the activity code it lets
        run) can change a CPU's occupancy, and the only CPU it touches
        is its own -- marked ``dirty``.  A thread that already failed to
        find a CPU this call therefore needs re-checking against dirty
        CPUs only: every clean CPU is still in the exact state that
        rejected it.  The re-scan after each placement keeps the
        pre-dirty-flag placement order (highest priority first, deque
        order within a priority) byte-for-byte, but previously-failed
        threads now cost a dirty-subset probe instead of a full CPU
        scan -- the win under wakeup storms, where one pass fails many
        threads and each placement used to re-scan all of them against
        all CPUs.
        """
        self._resched_pending = False
        for cpu in self.cpus:
            cpu.dirty = False
        policy = self.policy
        placement_order = policy.placement_order
        find_cpu = policy.find_cpu
        # Lazily allocated: the common resched places one thread with no
        # placement failures at all.
        failed: Optional[Dict[SimThread, None]] = None
        placed = True
        while placed:
            placed = False
            # Fresh snapshot per sweep: the loop body mutates the ready
            # queue on a placement, then breaks out to re-scan.
            for thread in placement_order():
                retry = failed is not None and thread in failed
                cpu = find_cpu(thread, dirty_only=retry)
                if cpu is None:
                    if not retry:
                        if failed is None:
                            failed = {}
                        failed[thread] = None
                    continue
                policy.remove(thread)
                if failed is not None:
                    failed.pop(thread, None)
                prev = cpu.current
                if prev is not None:
                    self._deschedule_current(cpu, requeue_front=True)
                self._emit_switch(cpu, prev, "R", thread)
                self._install(cpu, thread)
                cpu.dirty = True
                placed = True
                break

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------

    def _install(self, cpu: _Cpu, thread: SimThread) -> None:
        """Put ``thread`` on ``cpu`` and resume it.

        Quantum timers are armed *lazily*: the slice event can only ever
        fire while its thread still owns the CPU at the deadline, which
        (threads occupy simulated time only inside Compute segments)
        happens exactly when a completion is armed at or past the
        deadline.  So instead of posting a slice event on every install
        and cancelling it on almost every retire -- the single largest
        source of kernel-queue traffic -- the deadline is recorded on
        the CPU and the event is posted only when a completion crosses
        it.  The slice is always posted immediately *before* the
        crossing completion, reproducing the historical queue order for
        same-instant ties: a pre-existing completion keeps its smaller
        sequence number (fires first), the crossing completion gets a
        larger one (slice fires first) -- exactly as when the slice was
        armed eagerly at install/expiry time.
        """
        cpu.current = thread
        thread.state = ThreadState.RUNNING
        thread.cpu = cpu.id
        now = self.kernel._now
        cpu.dispatch_time = now
        post_after = self._post_after
        slice_ns = self.policy.timeslice_for(thread)
        remaining = thread.remaining
        if slice_ns is not None:
            deadline = now + slice_ns
            cpu.slice_deadline = deadline
            if remaining > 0 and now + remaining >= deadline:
                cpu.slice_handle = post_after(
                    slice_ns, self._slice_expired, (cpu, thread)
                )
        else:
            cpu.slice_deadline = None
        if remaining > 0:
            cpu.completion_time = now + remaining
            cpu.completion = post_after(
                remaining, self._compute_done, (cpu, thread)
            )
        else:
            value = thread.resume_value
            thread.resume_value = None
            self._continue(cpu, thread, value)

    def _continue(self, cpu: _Cpu, thread: SimThread, value: Any) -> None:
        """Advance the activity until it computes, blocks, yields or exits.

        ``_advancing`` is set once for the whole advance loop rather
        than around each ``thread.advance`` call: only activity code
        (which runs *inside* ``advance``) fires probes or publishes, so
        the post-request bookkeeping running with ``_advancing`` still
        set is unobservable -- and a nested install of the next thread
        (via ``_retire``) re-enters ``_continue``, which maintains the
        field itself.  Kernel events never run here (``kernel.run`` is
        not reentrant), so interrupt-context consumers still see None.
        """
        advance = thread.advance
        policy = self.policy
        post_after = self._post_after
        self._advancing = thread
        try:
            while True:
                request = advance(value)
                value = None
                if request is None:
                    self._retire(cpu, thread, ThreadState.DEAD)
                    return
                # Exact-type dispatch first (the requests are concrete
                # protocol classes); isinstance fallback keeps subclasses
                # working.
                request_type = type(request)
                if request_type is Compute or isinstance(request, Compute):
                    duration = request.duration
                    if duration == 0:
                        continue
                    thread.remaining = duration
                    policy.on_compute(thread, duration)
                    now = self.kernel._now
                    cpu.dispatch_time = now
                    end = now + duration
                    # Lazy quantum (see _install): this segment crossing
                    # the recorded deadline is what arms the slice event,
                    # posted before the completion to keep legacy tie
                    # order.
                    deadline = cpu.slice_deadline
                    if (
                        deadline is not None
                        and cpu.slice_handle is None
                        and end >= deadline
                    ):
                        cpu.slice_handle = post_after(
                            deadline - now, self._slice_expired, (cpu, thread)
                        )
                    cpu.completion_time = end
                    cpu.completion = post_after(
                        duration, self._compute_done, (cpu, thread)
                    )
                    return
                if request_type is Block or isinstance(request, Block):
                    if thread._pending_wakeup:
                        value = thread.consume_wakeup()
                        continue
                    self._retire(cpu, thread, ThreadState.BLOCKED)
                    return
                if request_type is YieldCpu or isinstance(request, YieldCpu):
                    self._retire(cpu, thread, ThreadState.READY)
                    return
                raise TypeError(f"activity of {thread} yielded {request!r}")
        finally:
            self._advancing = None

    def _retire(self, cpu: _Cpu, thread: SimThread, new_state: ThreadState) -> None:
        """Detach ``thread`` from ``cpu`` (blocked/dead/yielded) and
        dispatch the next runnable thread, emitting one sched_switch."""
        self._cancel_cpu_timers(cpu)
        thread.cpu = None
        thread.state = new_state
        cpu.current = None
        if new_state is ThreadState.READY:
            self._enqueue_ready(thread)  # sched_yield: tail of own prio
        nxt = self.policy.pick(cpu.id)
        self._emit_switch(cpu, thread, _SCHED_CHARS[new_state], nxt)
        if nxt is not None:
            self._install(cpu, nxt)

    def _deschedule_current(self, cpu: _Cpu, requeue_front: bool) -> None:
        """Preempt the running thread: account the partial segment and put
        the thread back on the ready queue (front keeps FIFO semantics)."""
        thread = cpu.current
        assert thread is not None
        elapsed = self.kernel._now - cpu.dispatch_time
        if thread.remaining > 0:
            thread.remaining -= elapsed
            assert thread.remaining >= 0, "compute segment over-ran its deadline"
        thread.cpu_time += elapsed
        cpu.busy_time += elapsed
        self.policy.on_run(thread, elapsed)
        self._cancel_cpu_timers(cpu)
        thread.cpu = None
        cpu.current = None
        self._enqueue_ready(thread, front=requeue_front)

    def _cancel_cpu_timers(self, cpu: _Cpu) -> None:
        # A token may be stale (its event fired, e.g. the completion
        # behind a _compute_done that lost a preemption race); the
        # kernel's generation tag makes cancelling it a no-op.
        if cpu.completion is not None:
            self._cancel_timer(cpu.completion)
            cpu.completion = None
        if cpu.slice_handle is not None:
            self._cancel_timer(cpu.slice_handle)
            cpu.slice_handle = None

    def _compute_done(self, cpu: _Cpu, thread: SimThread) -> None:
        if cpu.current is not thread:  # stale event after a preemption race
            return
        elapsed = self.kernel._now - cpu.dispatch_time
        thread.cpu_time += elapsed
        cpu.busy_time += elapsed
        self.policy.on_run(thread, elapsed)
        thread.remaining = 0
        cpu.completion = None
        self._continue(cpu, thread, None)

    def _slice_expired(self, cpu: _Cpu, thread: SimThread) -> None:
        if cpu.current is not thread:
            return
        cpu.slice_handle = None
        if self.policy.should_rotate(cpu.id, thread):
            self._deschedule_current(cpu, requeue_front=False)
            nxt = self.policy.pick(cpu.id)
            assert nxt is not None
            if nxt is thread:
                # Rotation found nobody better after all; keep running.
                self._install(cpu, thread)
                return
            self._emit_switch(cpu, thread, "R", nxt)
            self._install(cpu, nxt)
            self._request_resched()
        else:
            # Re-arm lazily (see _install): the fresh quantum is queried
            # now -- same instant as the historical eager re-arm, so
            # queue-length-sensitive policies (CFS) see identical state
            # -- but the event is posted only if the in-flight segment
            # crosses the new deadline.  The pending completion predates
            # this instant, so on an exact tie it keeps the smaller
            # sequence number, as it did against the eager re-arm.
            slice_ns = self.policy.timeslice_for(thread)
            deadline = self.kernel._now + slice_ns
            cpu.slice_deadline = deadline
            if cpu.completion is not None and cpu.completion_time >= deadline:
                cpu.slice_handle = self._post_after(
                    slice_ns, self._slice_expired, (cpu, thread)
                )

    # ------------------------------------------------------------------
    # Tracepoint emission
    # ------------------------------------------------------------------

    def _emit_switch(
        self,
        cpu: _Cpu,
        prev: Optional[SimThread],
        prev_state: str,
        nxt: Optional[SimThread],
    ) -> None:
        if prev is nxt:
            return
        self.context_switches += 1
        hooks = self._switch_hooks
        if not hooks:
            return  # no tracepoint consumers: skip record construction
        # tuple.__new__ skips the NamedTuple keyword wrapper -- one
        # record per context switch makes the ~2x difference count.
        record = tuple.__new__(
            SchedSwitch,
            (
                self.kernel._now,
                cpu.id,
                prev.pid if prev else IDLE_PID,
                prev.name if prev else cpu.swapper_comm,
                prev.priority if prev else -1,
                prev_state if prev else "R",
                nxt.pid if nxt else IDLE_PID,
                nxt.name if nxt else cpu.swapper_comm,
                nxt.priority if nxt else -1,
            ),
        )
        for hook in hooks:
            hook(record)

    def _emit_wakeup(self, thread: SimThread) -> None:
        hooks = self._wakeup_hooks
        if not hooks:
            return
        record = tuple.__new__(
            SchedWakeup,
            (
                self.kernel._now,
                thread.cpu,
                thread.pid,
                thread.name,
                thread.priority,
            ),
        )
        for hook in hooks:
            hook(record)

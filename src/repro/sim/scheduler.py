"""Preemptive multi-CPU scheduler for simulated threads.

The scheduler reproduces the slice of Linux scheduling behaviour the paper
depends on:

* per-CPU dispatch with CPU affinity masks,
* strict priority preemption (a waking higher-priority thread immediately
  preempts a lower-priority one on an allowed CPU),
* round-robin timeslicing between equal-priority ``SCHED_OTHER`` /
  ``SCHED_RR`` threads (``SCHED_FIFO`` threads run to the next blocking
  point),
* emission of ``sched_switch`` records -- (CPU, previous thread and its
  state, next thread) -- on every context switch, and ``sched_wakeup``
  records when a sleeping thread is woken.

Execution-time measurement in the paper (Alg. 2) reconstructs a callback's
CPU demand purely from the ``sched_switch`` stream; this module produces
that stream with the same fields Linux exposes.

Threads execute generator *activities* (see :mod:`repro.sim.threads`).
Context-switch points exist only at ``yield`` boundaries, which mirrors a
kernel with preemption points: Python code between two yields runs
atomically at one simulated instant while the thread owns a CPU.
"""

from __future__ import annotations

from bisect import insort
from functools import partial
from typing import Any, Callable, Deque, Dict, List, NamedTuple, Optional, Union

from collections import deque

from .kernel import EventHandle, MSEC, SimKernel
from .threads import (
    Activity,
    Block,
    Compute,
    SchedPolicy,
    SimThread,
    ThreadState,
    YieldCpu,
)

#: PID used for the idle task, as on Linux.
IDLE_PID = 0

#: Default round-robin quantum (Linux RR default is wider; 4 ms keeps
#: plenty of preemption in the evaluation scenarios).
DEFAULT_TIMESLICE = 4 * MSEC


class SchedSwitch(NamedTuple):
    """A ``sched_switch`` record, field-for-field what the paper's kernel
    tracer reads from the tracepoint (Sec. III-B).

    A ``NamedTuple``: one record is built per context switch inside the
    simulation hot loop, where tuple construction beats a frozen
    dataclass's per-field ``object.__setattr__`` severalfold.
    """

    ts: int
    cpu: int
    prev_pid: int
    prev_comm: str
    prev_prio: int
    prev_state: str
    next_pid: int
    next_comm: str
    next_prio: int


class SchedWakeup(NamedTuple):
    """A ``sched_wakeup`` record (listed as future work in the paper;
    used here by the waiting-time analysis extension)."""

    ts: int
    cpu: Optional[int]
    pid: int
    comm: str
    prio: int


class _Cpu:
    __slots__ = (
        "id", "current", "dispatch_time", "completion", "slice_handle",
        "busy_time", "dirty",
    )

    def __init__(self, cpu_id: int):
        self.id = cpu_id
        self.current: Optional[SimThread] = None
        self.dispatch_time = 0
        self.completion: Optional[EventHandle] = None
        self.slice_handle: Optional[EventHandle] = None
        self.busy_time = 0
        #: Touched by a placement during the current ``_resched`` call
        #: (see there); only dirty CPUs can newly accept a thread that
        #: already failed to place in the same call.
        self.dirty = False


class Scheduler:
    """Multi-CPU preemptive priority scheduler.

    Parameters
    ----------
    kernel:
        The simulation kernel providing the clock and event queue.
    num_cpus:
        Number of CPUs in the machine.
    timeslice:
        Round-robin quantum (ns) for ``SCHED_OTHER`` / ``SCHED_RR``.
    """

    def __init__(
        self,
        kernel: SimKernel,
        num_cpus: int = 4,
        timeslice: int = DEFAULT_TIMESLICE,
        first_pid: int = 1,
    ):
        if num_cpus < 1:
            raise ValueError("need at least one CPU")
        if timeslice <= 0:
            raise ValueError("timeslice must be positive")
        if first_pid < 1:
            raise ValueError("first_pid must be >= 1 (0 is the idle task)")
        self.kernel = kernel
        self.cpus = [_Cpu(i) for i in range(num_cpus)]
        self.timeslice = timeslice
        self._threads: Dict[int, SimThread] = {}
        self._next_pid = first_pid
        self._ready: Dict[int, Deque[SimThread]] = {}
        #: Priorities with a non-empty ready deque, kept ascending by
        #: bisect insertion.  Dispatch walks it in reverse instead of
        #: calling ``sorted(self._ready)`` on every pick -- same order,
        #: maintained incrementally.
        self._ready_prios: List[int] = []
        self._switch_hooks: List[Callable[[SchedSwitch], None]] = []
        self._wakeup_hooks: List[Callable[[SchedWakeup], None]] = []
        self._resched_pending = False
        self._advancing: Optional[SimThread] = None
        self.context_switches = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def num_cpus(self) -> int:
        return len(self.cpus)

    @property
    def current_thread(self) -> Optional[SimThread]:
        """The thread whose activity code is executing right now.

        Probes attached to middleware functions use this to resolve the
        PID of the traced process, like ``bpf_get_current_pid_tgid``.
        """
        return self._advancing

    def threads(self) -> List[SimThread]:
        return list(self._threads.values())

    def get_thread(self, pid: int) -> SimThread:
        return self._threads[pid]

    def allocate_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def spawn(
        self,
        activity: Activity,
        priority: int = 0,
        policy: SchedPolicy = SchedPolicy.OTHER,
        affinity: Optional[List[int]] = None,
        name: str = "",
        start: int = 0,
        pid: Optional[int] = None,
    ) -> SimThread:
        """Create a thread and make it runnable at time ``start``."""
        if affinity is not None:
            bad = [c for c in affinity if not 0 <= c < self.num_cpus]
            if bad:
                raise ValueError(f"affinity CPUs out of range: {bad}")
        if pid is None:
            pid = self.allocate_pid()
        elif pid in self._threads:
            raise ValueError(f"pid {pid} already in use")
        else:
            self._next_pid = max(self._next_pid, pid + 1)
        thread = SimThread(
            pid=pid,
            activity=activity,
            priority=priority,
            policy=policy,
            affinity=affinity,
            name=name,
        )
        self._threads[pid] = thread

        def _start() -> None:
            if thread.state == ThreadState.NEW:
                self._enqueue_ready(thread)
                self._request_resched()

        self.kernel.schedule_at(max(start, self.kernel.now), _start)
        return thread

    def wakeup(self, thread: Union[SimThread, int], payload: Any = None) -> None:
        """Wake ``thread``; delivers ``payload`` to its pending ``Block``.

        Waking a runnable thread queues the payload for its *next* block
        (condition-variable semantics: wakeups never get lost but do
        coalesce).  Waking a dead thread is ignored.
        """
        if isinstance(thread, int):
            thread = self._threads[thread]
        if thread.state == ThreadState.DEAD:
            return
        if thread.state == ThreadState.BLOCKED:
            thread.resume_value = payload
            self._emit_wakeup(thread)
            self._enqueue_ready(thread)
            self._request_resched()
        else:
            thread.queue_wakeup(payload)

    def on_sched_switch(self, hook: Callable[[SchedSwitch], None]) -> Callable[[], None]:
        """Register a ``sched_switch`` tracepoint consumer.

        Returns a detach function, mirroring tracepoint attach/detach.
        """
        self._switch_hooks.append(hook)
        return lambda: self._switch_hooks.remove(hook)

    def on_sched_wakeup(self, hook: Callable[[SchedWakeup], None]) -> Callable[[], None]:
        self._wakeup_hooks.append(hook)
        return lambda: self._wakeup_hooks.remove(hook)

    def utilization(self, over: Optional[int] = None) -> List[float]:
        """Fraction of time each CPU spent busy (finished segments only)."""
        horizon = over if over is not None else self.kernel.now
        if horizon <= 0:
            return [0.0 for _ in self.cpus]
        return [min(1.0, cpu.busy_time / horizon) for cpu in self.cpus]

    # ------------------------------------------------------------------
    # Ready queue management
    # ------------------------------------------------------------------

    def _enqueue_ready(self, thread: SimThread, front: bool = False) -> None:
        thread.state = ThreadState.READY
        dq = self._ready.get(thread.priority)
        if dq is None:
            dq = self._ready[thread.priority] = deque()
            insort(self._ready_prios, thread.priority)
        if front:
            dq.appendleft(thread)
        else:
            dq.append(thread)

    def _drop_ready_prio(self, prio: int) -> None:
        """Remove a priority whose deque just drained."""
        del self._ready[prio]
        self._ready_prios.remove(prio)

    def _pick_ready(self, cpu_id: int) -> Optional[SimThread]:
        for prio in reversed(self._ready_prios):
            dq = self._ready[prio]
            for thread in dq:
                if thread.can_run_on(cpu_id):
                    dq.remove(thread)
                    if not dq:
                        self._drop_ready_prio(prio)
                    return thread
        return None

    def _best_ready_priority(self, cpu_id: int) -> Optional[int]:
        for prio in reversed(self._ready_prios):
            if any(t.can_run_on(cpu_id) for t in self._ready[prio]):
                return prio
        return None

    # ------------------------------------------------------------------
    # Rescheduling (the "IPI" path)
    # ------------------------------------------------------------------

    def _request_resched(self) -> None:
        if not self._resched_pending:
            self._resched_pending = True
            self.kernel.schedule_after(0, self._resched)

    def _resched(self) -> None:
        """Place ready threads, one ladder sweep per placement.

        Within one call only a placement (and the activity code it lets
        run) can change a CPU's occupancy, and the only CPU it touches
        is its own -- marked ``dirty``.  A thread that already failed to
        find a CPU this call therefore needs re-checking against dirty
        CPUs only: every clean CPU is still in the exact state that
        rejected it.  The re-scan after each placement keeps the
        pre-dirty-flag placement order (highest priority first, deque
        order within a priority) byte-for-byte, but previously-failed
        threads now cost a dirty-subset probe instead of a full CPU
        scan -- the win under wakeup storms, where one pass fails many
        threads and each placement used to re-scan all of them against
        all CPUs.
        """
        self._resched_pending = False
        for cpu in self.cpus:
            cpu.dirty = False
        failed: Dict[SimThread, None] = {}
        placed = True
        while placed:
            placed = False
            # Snapshot: the loop body mutates the ladder, then breaks.
            for prio in list(reversed(self._ready_prios)):
                if prio not in self._ready:
                    continue
                for thread in list(self._ready[prio]):
                    retry = thread in failed
                    cpu = self._find_cpu_for(thread, dirty_only=retry)
                    if cpu is None:
                        if not retry:
                            failed[thread] = None
                        continue
                    self._remove_ready(thread)
                    failed.pop(thread, None)
                    prev = cpu.current
                    if prev is not None:
                        self._deschedule_current(cpu, requeue_front=True)
                    self._emit_switch(cpu, prev, "R", thread)
                    self._install(cpu, thread)
                    cpu.dirty = True
                    placed = True
                    break
                if placed:
                    break

    def _find_cpu_for(
        self, thread: SimThread, dirty_only: bool = False
    ) -> Optional[_Cpu]:
        """Pick an idle allowed CPU, else the allowed CPU running the
        lowest-priority thread strictly below ``thread``'s priority.

        ``dirty_only`` restricts the scan to CPUs touched since the
        thread last failed to place (see :meth:`_resched`): clean CPUs
        rejected it in an identical state, so filtering them preserves
        the full scan's pick exactly.
        """
        victim: Optional[_Cpu] = None
        for cpu in self.cpus:
            if dirty_only and not cpu.dirty:
                continue
            if not thread.can_run_on(cpu.id):
                continue
            if cpu.current is None:
                return cpu
            if cpu.current.priority < thread.priority:
                if victim is None or cpu.current.priority < victim.current.priority:
                    victim = cpu
        return victim

    def _remove_ready(self, thread: SimThread) -> None:
        dq = self._ready.get(thread.priority)
        if dq is not None and thread in dq:
            dq.remove(thread)
            if not dq:
                self._drop_ready_prio(thread.priority)

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------

    def _install(self, cpu: _Cpu, thread: SimThread) -> None:
        cpu.current = thread
        thread.state = ThreadState.RUNNING
        thread.cpu = cpu.id
        cpu.dispatch_time = self.kernel.now
        if thread.policy != SchedPolicy.FIFO:
            cpu.slice_handle = self.kernel.schedule_after(
                self.timeslice, partial(self._slice_expired, cpu, thread)
            )
        if thread.remaining > 0:
            cpu.completion = self.kernel.schedule_after(
                thread.remaining, partial(self._compute_done, cpu, thread)
            )
        else:
            value = thread.resume_value
            thread.resume_value = None
            self._continue(cpu, thread, value)

    def _continue(self, cpu: _Cpu, thread: SimThread, value: Any) -> None:
        """Advance the activity until it computes, blocks, yields or exits."""
        while True:
            self._advancing = thread
            try:
                request = thread.advance(value)
            finally:
                self._advancing = None
            value = None
            if request is None:
                self._retire(cpu, thread, ThreadState.DEAD)
                return
            # Exact-type dispatch first (the requests are concrete
            # protocol classes); isinstance fallback keeps subclasses
            # working.
            request_type = type(request)
            if request_type is Compute or isinstance(request, Compute):
                if request.duration == 0:
                    continue
                thread.remaining = request.duration
                cpu.dispatch_time = self.kernel.now
                cpu.completion = self.kernel.schedule_after(
                    request.duration, partial(self._compute_done, cpu, thread)
                )
                return
            if request_type is Block or isinstance(request, Block):
                if thread.has_pending_wakeup:
                    value = thread.consume_wakeup()
                    continue
                self._retire(cpu, thread, ThreadState.BLOCKED)
                return
            if request_type is YieldCpu or isinstance(request, YieldCpu):
                self._retire(cpu, thread, ThreadState.READY)
                return
            raise TypeError(f"activity of {thread} yielded {request!r}")

    def _retire(self, cpu: _Cpu, thread: SimThread, new_state: ThreadState) -> None:
        """Detach ``thread`` from ``cpu`` (blocked/dead/yielded) and
        dispatch the next runnable thread, emitting one sched_switch."""
        self._cancel_cpu_timers(cpu)
        thread.cpu = None
        thread.state = new_state
        cpu.current = None
        if new_state == ThreadState.READY:
            self._enqueue_ready(thread)  # sched_yield: tail of own prio
        nxt = self._pick_ready(cpu.id)
        self._emit_switch(cpu, thread, new_state.sched_char(), nxt)
        if nxt is not None:
            self._install(cpu, nxt)

    def _deschedule_current(self, cpu: _Cpu, requeue_front: bool) -> None:
        """Preempt the running thread: account the partial segment and put
        the thread back on the ready queue (front keeps FIFO semantics)."""
        thread = cpu.current
        assert thread is not None
        elapsed = self.kernel.now - cpu.dispatch_time
        if thread.remaining > 0:
            thread.remaining -= elapsed
            assert thread.remaining >= 0, "compute segment over-ran its deadline"
        thread.cpu_time += elapsed
        cpu.busy_time += elapsed
        self._cancel_cpu_timers(cpu)
        thread.cpu = None
        cpu.current = None
        self._enqueue_ready(thread, front=requeue_front)

    def _cancel_cpu_timers(self, cpu: _Cpu) -> None:
        if cpu.completion is not None:
            cpu.completion.cancel()
            cpu.completion = None
        if cpu.slice_handle is not None:
            cpu.slice_handle.cancel()
            cpu.slice_handle = None

    def _compute_done(self, cpu: _Cpu, thread: SimThread) -> None:
        if cpu.current is not thread:  # stale event after a preemption race
            return
        elapsed = self.kernel.now - cpu.dispatch_time
        thread.cpu_time += elapsed
        cpu.busy_time += elapsed
        thread.remaining = 0
        cpu.completion = None
        self._continue(cpu, thread, None)

    def _slice_expired(self, cpu: _Cpu, thread: SimThread) -> None:
        if cpu.current is not thread:
            return
        cpu.slice_handle = None
        competitor = self._best_ready_priority(cpu.id)
        if competitor is not None and competitor >= thread.priority:
            self._deschedule_current(cpu, requeue_front=False)
            nxt = self._pick_ready(cpu.id)
            assert nxt is not None
            if nxt is thread:
                # Round-robin found nobody better after all; keep running.
                self._install(cpu, thread)
                return
            self._emit_switch(cpu, thread, "R", nxt)
            self._install(cpu, nxt)
            self._request_resched()
        else:
            cpu.slice_handle = self.kernel.schedule_after(
                self.timeslice, partial(self._slice_expired, cpu, thread)
            )

    def _remove_ready_if_present(self, thread: SimThread) -> None:
        self._remove_ready(thread)

    # ------------------------------------------------------------------
    # Tracepoint emission
    # ------------------------------------------------------------------

    def _emit_switch(
        self,
        cpu: _Cpu,
        prev: Optional[SimThread],
        prev_state: str,
        nxt: Optional[SimThread],
    ) -> None:
        if prev is nxt:
            return
        self.context_switches += 1
        hooks = self._switch_hooks
        if not hooks:
            return  # no tracepoint consumers: skip record construction
        record = SchedSwitch(
            self.kernel.now,
            cpu.id,
            prev.pid if prev else IDLE_PID,
            prev.name if prev else f"swapper/{cpu.id}",
            prev.priority if prev else -1,
            prev_state if prev else "R",
            nxt.pid if nxt else IDLE_PID,
            nxt.name if nxt else f"swapper/{cpu.id}",
            nxt.priority if nxt else -1,
        )
        for hook in hooks:
            hook(record)

    def _emit_wakeup(self, thread: SimThread) -> None:
        hooks = self._wakeup_hooks
        if not hooks:
            return
        record = SchedWakeup(
            self.kernel.now,
            thread.cpu,
            thread.pid,
            thread.name,
            thread.priority,
        )
        for hook in hooks:
            hook(record)

"""Experiment E-OVH: tracing overheads (Sec. VI, "Tracing overheads").

The paper runs SYN and AVP localization together for 60 s and reports:
(i) ~9 MB of generated trace data and (ii) eBPF probe usage of 0.008 CPU
cores on average (~0.3 % of the applications' computational load).

This experiment reproduces both figures from the simulated run: trace
volume from the perf-buffer byte accounting and probe CPU share from the
bpftool-style ``run_time_ns`` counters.  It additionally reports the
kernel-trace footprint reduction achieved by in-kernel PID filtering
(the paper claims an order of three or more).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.avp import build_avp
from ..apps.syn import build_syn
from ..sim.kernel import MSEC, SEC
from ..sim.threads import Block, Compute
from ..tracing.overhead import OverheadReport, measure_overhead
from .runner import RunConfig, run_once
from .table2 import AVP_AFFINITY, SYN_AFFINITY


def spawn_background_load(
    world, count: int = 12, period_ns: int = 5 * MSEC, work_ns: int = 500_000
) -> None:
    """Plain OS processes (not ROS2 nodes): they context-switch but are
    *not* in the ``ros2_pids`` map, so the kernel tracer's in-kernel
    filter drops their sched events -- the mechanism behind the paper's
    "order of three or more" footprint reduction."""

    def activity():
        while True:
            yield Compute(work_ns)
            yield Block()

    for index in range(count):
        thread = world.scheduler.spawn(activity(), name=f"daemon{index}")

        def tick(t=thread):
            world.scheduler.wakeup(t)
            world.kernel.schedule_after(period_ns, tick)

        world.kernel.schedule_after(period_ns + index * MSEC, tick)


@dataclass
class OverheadResult:
    """Measured overheads plus the filtering ablation."""

    report: OverheadReport
    #: sched_switch tracepoint firings vs records kept by the filter
    sched_seen: int
    sched_recorded: int

    @property
    def filter_reduction(self) -> float:
        """Footprint reduction factor of PID filtering (events kept^-1)."""
        if self.sched_recorded == 0:
            return float("inf")
        return self.sched_seen / self.sched_recorded

    def summary(self) -> str:
        return (
            f"{self.report.summary()}\n"
            f"kernel events: {self.sched_seen} seen, "
            f"{self.sched_recorded} recorded "
            f"(PID filtering keeps 1/{self.filter_reduction:.1f})"
        )


def run_overhead(
    duration_ns: int = 60 * SEC,
    seed: int = 77,
    num_cpus: int = 4,
    syn_load_factor: float = 1.0,
    kernel_filter: bool = True,
) -> OverheadResult:
    """Run SYN + AVP concurrently for ``duration_ns`` and account."""

    def builder(world, run_index):
        avp = build_avp(world, affinity=AVP_AFFINITY)
        syn = build_syn(world, load_factor=syn_load_factor, affinity=SYN_AFFINITY)
        spawn_background_load(world)
        return (avp, syn)

    config = RunConfig(
        duration_ns=duration_ns,
        base_seed=seed,
        num_cpus=num_cpus,
        kernel_filter=kernel_filter,
    )
    result = run_once(builder, config)
    avp, syn = result.apps
    app_pids = avp.pids + syn.pids
    report = measure_overhead(
        [result.session.bpf],
        result.world,
        elapsed_ns=duration_ns,
        app_pids=app_pids,
    )
    kernel_tracer = result.session.kernel_tracer
    recorded = sum(len(s.sched_events) for s in result.session.segments)
    return OverheadResult(
        report=report,
        sched_seen=kernel_tracer.seen,
        sched_recorded=recorded,
    )

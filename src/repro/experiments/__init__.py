"""Experiment drivers: one module per paper artefact (see DESIGN.md)."""

from .batch import BatchConfig, BatchResult, run_batch
from .fig3 import (
    AVP_CHAIN,
    EXPECTED_SYN_EDGES,
    Fig3Result,
    check_avp_dag,
    check_syn_dag,
    run_fig3a,
    run_fig3b,
)
from .fig4 import FIG4_CALLBACKS, Fig4Result, Fig4Series, fig4_from_table2, run_fig4
from .overhead import OverheadResult, run_overhead
from .runner import Builder, RunConfig, RunResult, collect_database, run_many, run_once
from .table1 import TABLE1_REFERENCE, Table1Result, run_table1
from .table2 import (
    AVP_AFFINITY,
    SYN_AFFINITY,
    Table2Config,
    Table2Result,
    run_table2,
)

__all__ = [
    "BatchConfig",
    "BatchResult",
    "run_batch",
    "AVP_CHAIN",
    "EXPECTED_SYN_EDGES",
    "Fig3Result",
    "check_avp_dag",
    "check_syn_dag",
    "run_fig3a",
    "run_fig3b",
    "FIG4_CALLBACKS",
    "Fig4Result",
    "Fig4Series",
    "fig4_from_table2",
    "run_fig4",
    "OverheadResult",
    "run_overhead",
    "Builder",
    "RunConfig",
    "RunResult",
    "collect_database",
    "run_many",
    "run_once",
    "TABLE1_REFERENCE",
    "Table1Result",
    "run_table1",
    "AVP_AFFINITY",
    "SYN_AFFINITY",
    "Table2Config",
    "Table2Result",
    "run_table2",
]

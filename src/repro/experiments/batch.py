"""Parallel batch runner: shard N seeded scenario runs across CPU cores.

The paper's multi-run experiments (Table II, Fig. 4) need 50+
independent simulated runs; each run is a self-contained simulation, so
the set parallelises perfectly.  :func:`run_batch` executes any
registered scenario ``runs`` times with per-run seeds, sharding the run
indices over a :class:`concurrent.futures.ProcessPoolExecutor`, and
collects per-run synthesized DAGs, the merged DAG (strategy 2 of
Sec. V) and, optionally, every trace in a
:class:`~repro.tracing.session.TraceDatabase`.

Determinism is independent of the worker count: a run's seed, clock
base and PID base derive only from its ``run_index`` (exactly as in
:class:`~repro.experiments.runner.RunConfig`), workers rebuild the
scenario spec from ``(name, params, run_index)`` rather than receiving
live objects, and results are re-sorted by run index before merging.
``--jobs 1`` therefore produces byte-identical artefacts to ``--jobs
4``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.dag import TimingDag
from ..core.export import format_exec_table
from ..core.merge import merge_dags
from ..core.pipeline import synthesize_from_trace
from ..scenarios.registry import build_scenario_spec
from ..sim.kernel import MSEC
from ..tracing.session import Trace, TraceDatabase
from .runner import RunConfig, run_once


@dataclass
class BatchConfig:
    """Machine/tracing knobs shared by all runs of a batch.

    Fields mirror :class:`~repro.experiments.runner.RunConfig`;
    ``duration_ns`` / ``num_cpus`` default to the scenario spec's own
    values when left ``None``.  ``scenario_params`` is forwarded to the
    scenario factory (it must contain only picklable values).
    """

    duration_ns: Optional[int] = None
    num_cpus: Optional[int] = None
    base_seed: int = 1000
    warmup_ns: int = 2 * MSEC
    timeslice_ns: int = 4 * MSEC
    dds_latency_ns: int = 50_000
    kernel_filter: bool = True
    segment_every_ns: Optional[int] = None
    #: Keep every run's trace in the result database.  Off by default:
    #: most callers (Table II, Fig. 4, the CLI) only need the DAGs, and
    #: pickling full traces back from worker processes inflates the IPC
    #: payload by orders of magnitude on 50-run batches.  Enable
    #: explicitly when the traces themselves are the product.
    collect_traces: bool = False
    #: Scheduling-policy override for every run (None: the scenario
    #: spec's own policy, which defaults to ``"priority"``).
    sched_policy: Optional[str] = None
    scenario_params: Dict[str, Any] = field(default_factory=dict)

    def run_config(
        self, duration_ns: int, num_cpus: int, sched_policy: Optional[str] = None
    ) -> RunConfig:
        return RunConfig(
            duration_ns=duration_ns,
            warmup_ns=self.warmup_ns,
            num_cpus=num_cpus,
            timeslice_ns=self.timeslice_ns,
            base_seed=self.base_seed,
            kernel_filter=self.kernel_filter,
            segment_every_ns=self.segment_every_ns,
            dds_latency_ns=self.dds_latency_ns,
            sched_policy=sched_policy,
        )


@dataclass
class BatchResult:
    """Everything produced by one batch."""

    scenario: str
    runs: int
    jobs: int
    spec: Any  # ScenarioSpec of run 0 (reporting/ground-truth handle)
    per_run_dags: List[TimingDag]
    merged_dag: TimingDag
    database: TraceDatabase

    def table(self) -> str:
        """Table II-style exec-time table over the merged model."""
        return format_exec_table(self.merged_dag)


def _execute_run(
    scenario: str, run_index: int, runs: int, config: BatchConfig
) -> Tuple[int, TimingDag, Optional[Trace]]:
    """One seeded, traced, synthesized scenario run (worker body)."""
    spec = build_scenario_spec(
        scenario,
        run_index=run_index,
        runs=runs,
        duration_ns=config.duration_ns,
        policy=config.sched_policy,
        **config.scenario_params,
    )
    duration = config.duration_ns if config.duration_ns is not None else spec.duration_ns
    num_cpus = config.num_cpus if config.num_cpus is not None else spec.num_cpus
    # "priority" maps to None (the scheduler's default) so default-policy
    # batches keep working with injected legacy scheduler classes.
    policy = spec.policy if spec.policy != "priority" else None
    run_config = config.run_config(duration, num_cpus, sched_policy=policy)
    result = run_once(lambda world, i: spec.build(world), run_config, run_index=run_index)
    dag = synthesize_from_trace(result.trace, pids=result.apps.pids)
    return (run_index, dag, result.trace if config.collect_traces else None)


def _execute_shard(
    args: Tuple[str, List[int], int, BatchConfig],
) -> List[Tuple[int, TimingDag, Optional[Trace]]]:
    """Run a shard of run indices (module-level for pickling)."""
    scenario, run_indices, runs, config = args
    return [_execute_run(scenario, i, runs, config) for i in run_indices]


def _shard(run_indices: List[int], jobs: int) -> List[List[int]]:
    """Round-robin split, so long batches balance across workers.

    Also the single balancing rule for the store subsystem's sharded
    recording and synthesis (``repro.store``) -- one implementation
    backs every jobs-determinism guarantee.
    """
    shards: List[List[int]] = [[] for _ in range(jobs)]
    for position, run_index in enumerate(run_indices):
        shards[position % jobs].append(run_index)
    return [shard for shard in shards if shard]


def run_batch(
    scenario: str,
    runs: int,
    jobs: int = 1,
    config: Optional[BatchConfig] = None,
) -> BatchResult:
    """Execute ``runs`` seeded runs of ``scenario`` on ``jobs`` workers.

    Results are identical for any ``jobs`` value; only wall-clock time
    changes.  ``jobs=1`` stays in-process (no executor), which is also
    the fallback to use under interpreters without ``fork``/pickling
    support for worker dispatch.
    """
    if runs < 1:
        raise ValueError("need at least one run")
    if jobs < 1:
        raise ValueError("need at least one job")
    config = config if config is not None else BatchConfig()
    if config.duration_ns is not None and config.duration_ns <= 0:
        raise ValueError("duration must be positive")
    # Built once up-front: validates the name/params before forking and
    # gives the caller a spec handle for ground-truth/report use.
    spec = build_scenario_spec(
        scenario,
        run_index=0,
        runs=runs,
        duration_ns=config.duration_ns,
        policy=config.sched_policy,
        **config.scenario_params,
    )

    run_indices = list(range(runs))
    jobs = min(jobs, runs)
    if jobs == 1:
        outcomes = _execute_shard((scenario, run_indices, runs, config))
    else:
        shards = _shard(run_indices, jobs)
        outcomes = []
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            for shard_result in pool.map(
                _execute_shard,
                [(scenario, shard, runs, config) for shard in shards],
            ):
                outcomes.extend(shard_result)

    outcomes.sort(key=lambda outcome: outcome[0])
    per_run_dags = [dag for _, dag, _ in outcomes]
    database = TraceDatabase()
    for run_index, _, trace in outcomes:
        if trace is not None:
            database.add(f"run{run_index:03d}", trace)
    return BatchResult(
        scenario=scenario,
        runs=runs,
        jobs=jobs,
        spec=spec,
        per_run_dags=per_run_dags,
        merged_dag=merge_dags(per_run_dags),
        database=database,
    )

"""Experiment E-F4: estimate evolution with the number of runs (Fig. 4).

The paper merges DAGs over growing run prefixes and plots mWCET, mACET
and mBCET of four AVP callbacks (localizer cb6, filter_front cb2,
filter_rear cb1, voxel_grid cb5) against the number of runs: the
averages stabilise almost immediately while the measured WCET keeps
growing (about +10 % for cb2 by run ~23) before plateauing -- evidence
that modeling accuracy improves with more traces.

This module turns the per-run DAGs of the Table II experiment into
those series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.dag import TimingDag
from ..core.stats import ExecStats, prefix_stats
from .table2 import Table2Config, Table2Result, run_table2

#: Callbacks shown in Fig. 4.
FIG4_CALLBACKS = ("cb1", "cb2", "cb5", "cb6")


@dataclass
class Fig4Series:
    """One callback's estimate evolution over run prefixes."""

    cb: str
    stats: List[ExecStats]

    @property
    def runs(self) -> int:
        return len(self.stats)

    def mwcet_ms(self) -> List[float]:
        return [s.mwcet / 1e6 for s in self.stats]

    def macet_ms(self) -> List[float]:
        return [s.macet / 1e6 for s in self.stats]

    def mbcet_ms(self) -> List[float]:
        return [s.mbcet / 1e6 for s in self.stats]

    def mwcet_growth(self) -> float:
        """Relative growth of the WCET estimate from run 1 to the end."""
        first, last = self.stats[0].mwcet, self.stats[-1].mwcet
        if first <= 0:
            return 0.0
        return (last - first) / first

    def runs_to_converge(self) -> int:
        """First run index (1-based) at which mWCET reaches its final value."""
        final = self.stats[-1].mwcet
        for index, stat in enumerate(self.stats):
            if stat.mwcet == final:
                return index + 1
        return len(self.stats)


@dataclass
class Fig4Result:
    series: Dict[str, Fig4Series]

    def table(self) -> str:
        """Text rendering: one row per run milestone, one column set per CB."""
        cbs = sorted(self.series)
        runs = max(s.runs for s in self.series.values())
        milestones = sorted({1, 2, 3, 5, 10, 15, 20, 25, 30, 40, runs} & set(range(1, runs + 1)))
        header = "runs  " + "  ".join(
            f"{cb}:[mBCET mACET mWCET]" for cb in cbs
        )
        lines = [header, "-" * len(header)]
        for milestone in milestones:
            cells = []
            for cb in cbs:
                stat = self.series[cb].stats[milestone - 1]
                m = stat.ms()
                cells.append(f"{m.mbcet:6.2f} {m.macet:6.2f} {m.mwcet:6.2f}")
            lines.append(f"{milestone:>4}  " + "   ".join(cells))
        return "\n".join(lines)


def fig4_from_dags(
    per_run_dags: Sequence[TimingDag],
    cb_keys: Dict[str, str],
    callbacks: Sequence[str] = FIG4_CALLBACKS,
) -> Fig4Result:
    """Build the Fig. 4 series from per-run DAGs (prefix merging)."""
    series: Dict[str, Fig4Series] = {}
    for cb in callbacks:
        key = cb_keys[cb]
        per_run_samples: List[List[int]] = []
        for dag in per_run_dags:
            if dag.has_vertex(key):
                per_run_samples.append(list(dag.vertex(key).exec_times))
            else:
                per_run_samples.append([])
        series[cb] = Fig4Series(cb=cb, stats=prefix_stats(per_run_samples))
    return Fig4Result(series=series)


def run_fig4(config: Table2Config = Table2Config()) -> Fig4Result:
    """Convenience: run the Table II experiment and derive Fig. 4."""
    table2 = run_table2(config)
    return fig4_from_table2(table2)


def fig4_from_table2(table2: Table2Result) -> Fig4Result:
    return fig4_from_dags(table2.per_run_dags, table2.cb_keys)

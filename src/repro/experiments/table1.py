"""Experiment E-T1: the probe inventory (Table I).

Regenerates Table I from the live probe suite: a tracing session is
created, its probes attached, and the table is rebuilt from the actually
attached BPF programs -- verifying that the implementation exposes
exactly the sixteen probe points the paper lists, on the same middleware
symbols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..tracing.session import TracingSession
from ..world import World
from ..ros2.node import register_ros2_symbols

#: Table I ground truth: row -> (library, function, purpose).
TABLE1_REFERENCE: Dict[str, Tuple[str, str, str]] = {
    "P1": ("rmw_cyclonedds_cpp", "rmw_create_node",
           "node name and executor-thread PID"),
    "P2": ("rclcpp", "execute_timer", "timer CB starts"),
    "P3": ("rcl", "rcl_timer_call", "timer CB ID"),
    "P4": ("rclcpp", "execute_timer", "timer CB ends"),
    "P5": ("rclcpp", "execute_subscription", "subscriber CB starts"),
    "P6": ("rmw_cyclonedds_cpp", "rmw_take_int",
           "topic read: subscriber CB ID, topic, srcTS"),
    "P7": ("message_filters", "operator()",
           "subscriber CB used for data synchronization"),
    "P8": ("rclcpp", "execute_subscription", "subscriber CB ends"),
    "P9": ("rclcpp", "execute_service", "service CB starts"),
    "P10": ("rmw_cyclonedds_cpp", "rmw_take_request",
            "request read: service CB ID, service, srcTS"),
    "P11": ("rclcpp", "execute_service", "service CB ends"),
    "P12": ("rclcpp", "execute_client", "client CB starts"),
    "P13": ("rmw_cyclonedds_cpp", "rmw_take_response",
            "response read: client CB ID, service, srcTS"),
    "P14": ("rclcpp", "take_type_erased_response",
            "whether the client CB will be dispatched"),
    "P15": ("rclcpp", "execute_client", "client CB ends"),
    "P16": ("cyclonedds", "dds_write_impl",
            "topic write: topic name and srcTS"),
}


@dataclass
class Table1Result:
    rows: List[Tuple[str, str, str, str]]  # (row id, kind, symbol, purpose)
    missing: List[str]
    unexpected: List[str]

    @property
    def complete(self) -> bool:
        return not self.missing

    def table(self) -> str:
        header = f"{'No.':<5} {'Kind':<11} {'Symbol':<44} Purpose"
        lines = [header, "-" * 100]
        for row_id, kind, symbol, purpose in self.rows:
            lines.append(f"{row_id:<5} {kind:<11} {symbol:<44} {purpose}")
        return "\n".join(lines)


def run_table1() -> Table1Result:
    """Attach the full probe suite and rebuild Table I from it."""
    world = World(num_cpus=1, seed=0)
    register_ros2_symbols(world)
    session = TracingSession(world)
    session.start_init()
    session.start_runtime()
    attached: Dict[str, Tuple[str, str]] = {}
    for program in session.bpf.programs:
        # Probe names carry the Table I row ("P6.entry" rows are the
        # entry half of the srcTS stash; report the exit row).
        row_id = program.name.split(".")[0]
        if row_id.startswith("P"):
            attached[row_id] = (program.kind, program.target)
    session.stop_runtime()
    session.stop_init()

    rows: List[Tuple[str, str, str, str]] = []
    missing: List[str] = []
    for row_id in sorted(TABLE1_REFERENCE, key=lambda r: int(r[1:])):
        lib, func, purpose = TABLE1_REFERENCE[row_id]
        expected_symbol = f"{lib}:{func}"
        if row_id not in attached:
            missing.append(row_id)
            continue
        kind, target = attached[row_id]
        if target != expected_symbol:
            missing.append(row_id)
            continue
        rows.append((row_id, kind, target, purpose))
    unexpected = sorted(set(attached) - set(TABLE1_REFERENCE))
    return Table1Result(rows=rows, missing=missing, unexpected=unexpected)

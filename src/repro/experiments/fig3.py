"""Experiment E-F3a / E-F3b: synthesize the SYN and AVP DAGs (Fig. 3).

Runs each application on a fresh traced world and synthesizes its timing
model.  ``check_syn_dag`` / ``check_avp_dag`` verify the structural
claims of Sec. VI against the synthesized graphs and return a list of
(claim, passed) pairs for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..apps.avp import AvpApp, build_avp
from ..apps.syn import SynApp, build_syn
from ..core.dag import TimingDag
from ..core.pipeline import synthesize_from_trace
from ..sim.kernel import SEC
from .runner import RunConfig, run_once

#: Expected SYN edges as (src key, dst key) pairs -- the ground truth of
#: Fig. 3a under this repo's reconstruction (see apps/syn.py).
EXPECTED_SYN_EDGES: Tuple[Tuple[str, str], ...] = (
    ("syn_n1/T1", "syn_n3/SC1"),
    ("syn_n1/T1", "syn_n3/SC4"),
    ("syn_n1/T1", "syn_n1/SC5"),
    ("syn_n3/SC1", "syn_n4/SV1@/sv1Request#SC1"),
    ("syn_n4/SV1@/sv1Request#SC1", "syn_n3/CL1"),
    ("syn_n3/CL1", "syn_n6/SC2.1"),
    ("syn_n2/T2", "syn_n4/SV2@/sv2Request#T2"),
    ("syn_n4/SV2@/sv2Request#T2", "syn_n2/CL2"),
    ("syn_n2/CL2", "syn_n1/SV3@/sv3Request#CL2"),
    ("syn_n1/SV3@/sv3Request#CL2", "syn_n2/CL4"),
    ("syn_n2/T3", "syn_n5/SC3"),
    ("syn_n5/SC3", "syn_n1/SV3@/sv3Request#SC3"),
    ("syn_n1/SV3@/sv3Request#SC3", "syn_n5/CL3"),
    ("syn_n5/CL3", "syn_n6/SC2.2"),
    ("syn_n6/SC2.1", "syn_n6/&"),
    ("syn_n6/SC2.2", "syn_n6/&"),
)


@dataclass
class Fig3Result:
    """The synthesized DAG plus the checked structural claims."""

    dag: TimingDag
    app: object
    checks: List[Tuple[str, bool]]

    @property
    def all_passed(self) -> bool:
        return all(ok for _, ok in self.checks)


def run_fig3a(
    duration_ns: int = 12 * SEC, seed: int = 42, num_cpus: int = 4
) -> Fig3Result:
    """Trace SYN and synthesize its DAG (Fig. 3a)."""
    config = RunConfig(duration_ns=duration_ns, base_seed=seed, num_cpus=num_cpus)
    result = run_once(lambda world, i: build_syn(world), config)
    app: SynApp = result.apps
    dag = synthesize_from_trace(result.trace, pids=app.pids)
    return Fig3Result(dag=dag, app=app, checks=check_syn_dag(dag))


def check_syn_dag(dag: TimingDag) -> List[Tuple[str, bool]]:
    """Verify the five structural scenarios of Sec. VI on the SYN DAG."""
    checks: List[Tuple[str, bool]] = []
    dag.validate()

    # (i) same-type CBs in one node are distinguished.
    timers_n2 = {v.cb_id for v in dag.find_vertices(node="syn_n2", cb_type="timer")}
    clients_n2 = {v.cb_id for v in dag.find_vertices(node="syn_n2", cb_type="client")}
    subs_n3 = {v.cb_id for v in dag.find_vertices(node="syn_n3", cb_type="subscriber")}
    services_n4 = {v.cb_id for v in dag.find_vertices(node="syn_n4", cb_type="service")}
    checks.append(("(i) T2,T3 timers in syn_n2", timers_n2 == {"T2", "T3"}))
    checks.append(("(i) CL2,CL4 clients in syn_n2", clients_n2 == {"CL2", "CL4"}))
    checks.append(("(i) SC1,SC4 subscribers in syn_n3", subs_n3 == {"SC1", "SC4"}))
    checks.append(("(i) SV1,SV2 services in syn_n4", services_n4 == {"SV1", "SV2"}))

    # (ii) different CB types in one node.
    types_n1 = {v.cb_type for v in dag.find_vertices(node="syn_n1")}
    checks.append(("(ii) timer+subscriber+service in syn_n1",
                   {"timer", "subscriber", "service"} <= types_n1))

    # (iii) /clp3 has two subscribers.
    clp3_subs = {e.dst for e in dag.edges() if e.topic == "/clp3"}
    checks.append(("(iii) /clp3 fans out to SC4 and SC5",
                   clp3_subs == {"syn_n3/SC4", "syn_n1/SC5"}))

    # (iv) SV3 invoked from SC3 and CL2 -> two vertices, disjoint chains.
    sv3 = dag.find_vertices(cb_id="SV3")
    checks.append(("(iv) two SV3 vertices", len(sv3) == 2))
    sv3_succ = {
        v.key: {s.cb_id for s in dag.successors(v.key)} for v in sv3
    }
    disjoint = sorted(sv3_succ.values(), key=sorted) == [{"CL3"}, {"CL4"}]
    checks.append(("(iv) SV3 chains end at CL3 / CL4 disjointly", disjoint))

    # (v) data synchronization: AND junction fed by SC2.1 + SC2.2.
    junctions = [v for v in dag.vertices() if v.is_and_junction]
    ok = (
        len(junctions) == 1
        and {p.cb_id for p in dag.predecessors(junctions[0].key)}
        == {"SC2.1", "SC2.2"}
        and junctions[0].exec_stats.mwcet == 0
    )
    checks.append(("(v) AND junction over SC2.1+SC2.2 with zero WCET", ok))

    # Full edge set matches the ground truth.
    actual = {(e.src, e.dst) for e in dag.edges()}
    checks.append(("edge set matches Fig. 3a ground truth",
                   actual == set(EXPECTED_SYN_EDGES)))
    return checks


#: The AVP chain of Fig. 3b in vertex keys (junction between cb3/cb4 and cb5).
AVP_CHAIN = (
    "filter_transform_vlp16_rear/cb1",
    "filter_transform_vlp16_front/cb2",
    "point_cloud_fusion/cb3",
    "point_cloud_fusion/cb4",
    "point_cloud_fusion/&",
    "voxel_grid_cloud_node/cb5",
    "p2d_ndt_localizer_node/cb6",
)


def run_fig3b(
    duration_ns: int = 20 * SEC, seed: int = 7, num_cpus: int = 4
) -> Fig3Result:
    """Trace the AVP localization demo and synthesize its DAG (Fig. 3b)."""
    config = RunConfig(duration_ns=duration_ns, base_seed=seed, num_cpus=num_cpus)
    result = run_once(lambda world, i: build_avp(world), config)
    app: AvpApp = result.apps
    dag = synthesize_from_trace(result.trace, pids=app.pids)
    return Fig3Result(dag=dag, app=app, checks=check_avp_dag(dag))


def check_avp_dag(dag: TimingDag) -> List[Tuple[str, bool]]:
    """Verify the Fig. 3b structure: 6 CBs in 5 nodes plus one junction."""
    checks: List[Tuple[str, bool]] = []
    dag.validate()
    cb_vertices = [v for v in dag.vertices() if not v.is_and_junction]
    checks.append(("6 callbacks", len(cb_vertices) == 6))
    checks.append(("5 nodes", len({v.node for v in cb_vertices}) == 5))
    checks.append(("all callbacks are subscribers",
                   {v.cb_type for v in cb_vertices} == {"subscriber"}))
    junctions = [v for v in dag.vertices() if v.is_and_junction]
    checks.append(("one AND junction in the fusion node",
                   len(junctions) == 1 and junctions[0].node == "point_cloud_fusion"))
    expected_edges = {
        ("filter_transform_vlp16_rear/cb1", "point_cloud_fusion/cb4"),
        ("filter_transform_vlp16_front/cb2", "point_cloud_fusion/cb3"),
        ("point_cloud_fusion/cb3", "point_cloud_fusion/&"),
        ("point_cloud_fusion/cb4", "point_cloud_fusion/&"),
        ("point_cloud_fusion/&", "voxel_grid_cloud_node/cb5"),
        ("voxel_grid_cloud_node/cb5", "p2d_ndt_localizer_node/cb6"),
    }
    actual = {(e.src, e.dst) for e in dag.edges()}
    checks.append(("chain edges match Fig. 3b", actual == expected_edges))
    checks.append(("cb3 and cb4 marked as sync members",
                   dag.vertex("point_cloud_fusion/cb3").is_sync_member
                   and dag.vertex("point_cloud_fusion/cb4").is_sync_member))
    return checks

"""Experiment E-T2: execution times of the AVP callbacks (Table II).

The paper runs AVP localization and SYN *concurrently* 50 times, applies
the DAG synthesis per run, merges the DAGs, and reports mBCET / mACET /
mWCET for cb1..cb6.  SYN's load changes across runs to vary the
interference the AVP callbacks experience (which perturbs *when* they
run, but -- thanks to Alg. 2 -- not their measured execution times,
except where interference genuinely moves work between callbacks, i.e.
which fusion member arrives last and carries the fusion cost).

Machine layout (4 CPUs):

=====  ==========================================================
cpu 0  filter front (cb2)
cpu 1  filter rear (cb1)  + SYN (interference)
cpu 2  point_cloud_fusion (cb3/cb4) + voxel grid (cb5)
cpu 3  NDT localizer (cb6)          + SYN (interference)
=====  ==========================================================

The deployment itself is the ``avp-interference`` entry of the scenario
registry; this module drives it through the parallel batch runner
(``jobs`` shards the independent runs over CPU cores) and keeps the
Table II reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..apps.avp import AVP_CB_KEYS, TABLE2_REFERENCE_MS
from ..core.dag import TimingDag
from ..core.export import format_exec_table
from ..scenarios.library import AVP_AFFINITY, SYN_AFFINITY
from ..sim.kernel import SEC
from .batch import BatchConfig, run_batch


@dataclass
class Table2Config:
    """Run-count / duration knobs (paper: 50 runs x 80 s)."""

    runs: int = 50
    duration_ns: int = 10 * SEC
    base_seed: int = 2000
    num_cpus: int = 4
    syn_load_range: Tuple[float, float] = (0.5, 2.5)
    #: Worker processes for the independent runs (1: in-process).
    jobs: int = 1

    def load_factor(self, run_index: int) -> float:
        """SYN load for a given run (swept linearly across runs)."""
        from ..scenarios.library import _syn_load_factor

        return _syn_load_factor(run_index, self.runs, self.syn_load_range)


@dataclass
class Table2Result:
    """Merged model, per-run models, and the printed table."""

    merged_dag: TimingDag
    per_run_dags: List[TimingDag]
    cb_keys: Dict[str, str]
    reference_ms: Dict[str, tuple] = field(default_factory=lambda: dict(TABLE2_REFERENCE_MS))

    def table(self) -> str:
        names = {key: cb for cb, key in self.cb_keys.items()}
        order = [self.cb_keys[cb] for cb in sorted(self.cb_keys)]
        return format_exec_table(self.merged_dag, order=order, names=names)

    def measured_ms(self, cb: str) -> Tuple[float, float, float]:
        stats = self.merged_dag.vertex(self.cb_keys[cb]).exec_stats.ms()
        return (stats.mbcet, stats.macet, stats.mwcet)

    def comparison(self) -> str:
        lines = [
            f"{'CB':<5} {'paper mBCET':>12} {'ours':>8} "
            f"{'paper mACET':>12} {'ours':>8} {'paper mWCET':>12} {'ours':>8}"
        ]
        for cb in sorted(self.cb_keys):
            ref = self.reference_ms[cb]
            ours = self.measured_ms(cb)
            lines.append(
                f"{cb:<5} {ref[0]:>12.2f} {ours[0]:>8.2f} "
                f"{ref[1]:>12.2f} {ours[1]:>8.2f} {ref[2]:>12.2f} {ours[2]:>8.2f}"
            )
        return "\n".join(lines)


def run_table2(config: Table2Config = Table2Config()) -> Table2Result:
    """The full experiment: N concurrent runs, DAG per run, merged DAG."""
    batch = run_batch(
        "avp-interference",
        runs=config.runs,
        jobs=config.jobs,
        config=BatchConfig(
            duration_ns=config.duration_ns,
            num_cpus=config.num_cpus,
            base_seed=config.base_seed,
            collect_traces=False,
            scenario_params={"syn_load_range": config.syn_load_range},
        ),
    )
    return Table2Result(
        merged_dag=batch.merged_dag,
        per_run_dags=batch.per_run_dags,
        cb_keys=dict(AVP_CB_KEYS),
    )

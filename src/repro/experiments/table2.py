"""Experiment E-T2: execution times of the AVP callbacks (Table II).

The paper runs AVP localization and SYN *concurrently* 50 times, applies
the DAG synthesis per run, merges the DAGs, and reports mBCET / mACET /
mWCET for cb1..cb6.  SYN's load changes across runs to vary the
interference the AVP callbacks experience (which perturbs *when* they
run, but -- thanks to Alg. 2 -- not their measured execution times,
except where interference genuinely moves work between callbacks, i.e.
which fusion member arrives last and carries the fusion cost).

Machine layout (4 CPUs):

=====  ==========================================================
cpu 0  filter front (cb2)
cpu 1  filter rear (cb1)  + SYN (interference)
cpu 2  point_cloud_fusion (cb3/cb4) + voxel grid (cb5)
cpu 3  NDT localizer (cb6)          + SYN (interference)
=====  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..apps.avp import AvpApp, TABLE2_REFERENCE_MS, build_avp
from ..apps.syn import build_syn
from ..core.dag import TimingDag
from ..core.export import format_exec_table
from ..core.merge import merge_dags
from ..core.pipeline import synthesize_from_trace
from ..sim.kernel import SEC
from .runner import RunConfig, run_many

#: Per-node CPU affinities for the AVP nodes.
AVP_AFFINITY: Dict[str, List[int]] = {
    "filter_transform_vlp16_front": [0],
    "filter_transform_vlp16_rear": [1],
    "point_cloud_fusion": [2],
    "voxel_grid_cloud_node": [2],
    "p2d_ndt_localizer_node": [3],
}

#: CPUs shared with SYN.
SYN_AFFINITY: List[int] = [1, 3]


@dataclass
class Table2Config:
    """Run-count / duration knobs (paper: 50 runs x 80 s)."""

    runs: int = 50
    duration_ns: int = 10 * SEC
    base_seed: int = 2000
    num_cpus: int = 4
    syn_load_range: Tuple[float, float] = (0.5, 2.5)

    def load_factor(self, run_index: int) -> float:
        """SYN load for a given run (swept linearly across runs)."""
        lo, hi = self.syn_load_range
        if self.runs <= 1:
            return lo
        return lo + (hi - lo) * run_index / (self.runs - 1)


@dataclass
class Table2Result:
    """Merged model, per-run models, and the printed table."""

    merged_dag: TimingDag
    per_run_dags: List[TimingDag]
    cb_keys: Dict[str, str]
    reference_ms: Dict[str, tuple] = field(default_factory=lambda: dict(TABLE2_REFERENCE_MS))

    def table(self) -> str:
        names = {key: cb for cb, key in self.cb_keys.items()}
        order = [self.cb_keys[cb] for cb in sorted(self.cb_keys)]
        return format_exec_table(self.merged_dag, order=order, names=names)

    def measured_ms(self, cb: str) -> Tuple[float, float, float]:
        stats = self.merged_dag.vertex(self.cb_keys[cb]).exec_stats.ms()
        return (stats.mbcet, stats.macet, stats.mwcet)

    def comparison(self) -> str:
        lines = [
            f"{'CB':<5} {'paper mBCET':>12} {'ours':>8} "
            f"{'paper mACET':>12} {'ours':>8} {'paper mWCET':>12} {'ours':>8}"
        ]
        for cb in sorted(self.cb_keys):
            ref = self.reference_ms[cb]
            ours = self.measured_ms(cb)
            lines.append(
                f"{cb:<5} {ref[0]:>12.2f} {ours[0]:>8.2f} "
                f"{ref[1]:>12.2f} {ours[1]:>8.2f} {ref[2]:>12.2f} {ours[2]:>8.2f}"
            )
        return "\n".join(lines)


def build_concurrent_apps(world, run_index: int, config: Table2Config):
    """AVP + SYN on one machine, SYN load varying per run."""
    from ..apps.avp import LIDAR_PERIOD, default_workloads

    samples_per_run = max(1, config.duration_ns // LIDAR_PERIOD)
    avp = build_avp(
        world,
        workloads=default_workloads(samples_per_run=samples_per_run),
        affinity=AVP_AFFINITY,
    )
    syn = build_syn(
        world,
        load_factor=config.load_factor(run_index),
        affinity=SYN_AFFINITY,
    )
    return (avp, syn)


def run_table2(config: Table2Config = Table2Config()) -> Table2Result:
    """The full experiment: N concurrent runs, DAG per run, merged DAG."""
    run_config = RunConfig(
        duration_ns=config.duration_ns,
        base_seed=config.base_seed,
        num_cpus=config.num_cpus,
    )
    results = run_many(
        lambda world, i: build_concurrent_apps(world, i, config),
        runs=config.runs,
        config=run_config,
    )
    per_run_dags: List[TimingDag] = []
    cb_keys: Optional[Dict[str, str]] = None
    for result in results:
        avp: AvpApp = result.apps[0]
        cb_keys = avp.cb_keys
        per_run_dags.append(synthesize_from_trace(result.trace, pids=avp.pids))
    assert cb_keys is not None
    return Table2Result(
        merged_dag=merge_dags(per_run_dags),
        per_run_dags=per_run_dags,
        cb_keys=cb_keys,
    )

"""Experiment runner: build, trace and run applications on fresh worlds.

All evaluation experiments share the same shape: build application(s) on
a fresh :class:`~repro.world.World`, attach the tracers in the Fig. 2
order (TR-IN before launch, TR-RT/TR-KN after initialization), advance
simulated time, and collect the trace.  Multi-run experiments repeat
this with per-run seeds and build parameters and store every trace in a
:class:`~repro.tracing.session.TraceDatabase`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..sim.kernel import MSEC, SEC
from ..tracing.session import Trace, TraceDatabase, TracingSession
from ..world import World

#: Builder signature: build(world, run_index) -> arbitrary app handle(s).
Builder = Callable[[World, int], Any]


@dataclass
class RunResult:
    """Everything produced by one traced run."""

    run_index: int
    world: World
    session: TracingSession
    trace: Trace
    apps: Any

    @property
    def pid_map(self) -> Dict[int, str]:
        return self.trace.pid_map


@dataclass
class RunConfig:
    """Machine + tracing configuration shared by the runs."""

    duration_ns: int = 10 * SEC
    warmup_ns: int = 2 * MSEC
    num_cpus: int = 4
    timeslice_ns: int = 4 * MSEC
    base_seed: int = 1000
    kernel_filter: bool = True
    segment_every_ns: Optional[int] = None
    dds_latency_ns: int = 50_000
    #: Give each run a disjoint clock and PID base (as successive runs on
    #: a real machine have), so traces from different runs can be merged
    #: into one stream (Fig. 2's "merge traces" strategy).
    stagger_runs: bool = True
    pid_stride: int = 10_000
    #: Scheduling policy name for the world's scheduler (None keeps the
    #: default priority/RR policy and stays compatible with injected
    #: legacy scheduler classes that predate the policy parameter).
    sched_policy: Optional[str] = None

    def seed_for(self, run_index: int) -> int:
        return self.base_seed + run_index

    def time_base_for(self, run_index: int) -> int:
        if not self.stagger_runs:
            return 0
        return run_index * (self.duration_ns + self.warmup_ns + SEC)

    def pid_base_for(self, run_index: int) -> int:
        if not self.stagger_runs:
            return 1
        return 1 + run_index * self.pid_stride


def run_once(
    builder: Builder,
    config: RunConfig = RunConfig(),
    run_index: int = 0,
) -> RunResult:
    """One traced application run following the Fig. 2 deployment."""
    world = World(
        num_cpus=config.num_cpus,
        seed=config.seed_for(run_index),
        timeslice=config.timeslice_ns,
        dds_latency_ns=config.dds_latency_ns,
        start_time_ns=config.time_base_for(run_index),
        first_pid=config.pid_base_for(run_index),
        sched_policy=config.sched_policy,
    )
    apps = builder(world, run_index)
    session = TracingSession(world, kernel_filter=config.kernel_filter)
    session.start_init()
    world.launch()
    world.run(for_ns=config.warmup_ns)
    session.stop_init()
    session.start_runtime()
    if config.segment_every_ns:
        remaining = config.duration_ns
        while remaining > 0:
            step = min(config.segment_every_ns, remaining)
            world.run(for_ns=step)
            session.rotate()
            remaining -= step
    else:
        world.run(for_ns=config.duration_ns)
    session.stop_runtime()
    return RunResult(
        run_index=run_index,
        world=world,
        session=session,
        trace=session.trace(),
        apps=apps,
    )


def run_many(
    builder: Builder,
    runs: int,
    config: RunConfig = RunConfig(),
) -> List[RunResult]:
    """Repeat :func:`run_once` with per-run seeds (fresh world each run)."""
    if runs < 1:
        raise ValueError("need at least one run")
    return [run_once(builder, config, run_index=i) for i in range(runs)]


def collect_database(results: List[RunResult]) -> TraceDatabase:
    """Store each run's trace under ``run<index>`` (the Fig. 2 server)."""
    database = TraceDatabase()
    for result in results:
        database.add(f"run{result.run_index:03d}", result.trace)
    return database

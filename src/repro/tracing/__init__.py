"""eBPF-based tracing substrate and the paper's three tracers.

Reproduces the observability stack of Fig. 1: a BCC-style BPF front end
(programs, maps, perf buffers), uprobe/uretprobe attachment to middleware
symbols, kernel tracepoints, the P1..P16 probe suite of Table I, and the
ROS2-INIT / ROS2-RT / Kernel tracers with segmented trace collection.
"""

from .bpf import (
    Bpf,
    BpfError,
    BpfMap,
    BpfProgram,
    DEFAULT_TRACEPOINT_COST_NS,
    DEFAULT_UPROBE_COST_NS,
    PerfBuffer,
)
from .events import (
    CB_END_PROBES,
    CB_START_PROBES,
    CB_TYPE_BY_START,
    P1_CREATE_NODE,
    P2_TIMER_START,
    P3_TIMER_CALL,
    P4_TIMER_END,
    P5_SUB_START,
    P6_TAKE,
    P7_SYNC_OP,
    P8_SUB_END,
    P9_SERVICE_START,
    P10_TAKE_REQUEST,
    P11_SERVICE_END,
    P12_CLIENT_START,
    P13_TAKE_RESPONSE,
    P14_TAKE_TYPE_ERASED,
    P15_CLIENT_END,
    P16_DDS_WRITE,
    PROBE_TABLE,
    TAKE_PROBES,
    TraceEvent,
)
from .overhead import (
    EVENT_HEADER_BYTES,
    OverheadReport,
    SCHED_EVENT_BYTES,
    event_size_bytes,
    measure_overhead,
)
from .probes import InitProbes, ROS2_PIDS_MAP, RuntimeProbes, SRCTS_STASH_MAP
from .session import Trace, TraceDatabase, TraceSegment, TracingSession
from .storage import TRACE_SUFFIX, load_database, load_trace, save_database, save_trace
from .symbols import ProbeContext, Symbol, SymbolLookupError, SymbolTable
from .tracers import KernelTracer, Ros2InitTracer, Ros2RtTracer

__all__ = [
    "Bpf",
    "BpfError",
    "BpfMap",
    "BpfProgram",
    "DEFAULT_TRACEPOINT_COST_NS",
    "DEFAULT_UPROBE_COST_NS",
    "PerfBuffer",
    "CB_END_PROBES",
    "CB_START_PROBES",
    "CB_TYPE_BY_START",
    "P1_CREATE_NODE",
    "P2_TIMER_START",
    "P3_TIMER_CALL",
    "P4_TIMER_END",
    "P5_SUB_START",
    "P6_TAKE",
    "P7_SYNC_OP",
    "P8_SUB_END",
    "P9_SERVICE_START",
    "P10_TAKE_REQUEST",
    "P11_SERVICE_END",
    "P12_CLIENT_START",
    "P13_TAKE_RESPONSE",
    "P14_TAKE_TYPE_ERASED",
    "P15_CLIENT_END",
    "P16_DDS_WRITE",
    "PROBE_TABLE",
    "TAKE_PROBES",
    "TraceEvent",
    "EVENT_HEADER_BYTES",
    "OverheadReport",
    "SCHED_EVENT_BYTES",
    "event_size_bytes",
    "measure_overhead",
    "InitProbes",
    "ROS2_PIDS_MAP",
    "RuntimeProbes",
    "SRCTS_STASH_MAP",
    "Trace",
    "TraceDatabase",
    "TRACE_SUFFIX",
    "load_database",
    "load_trace",
    "save_database",
    "save_trace",
    "TraceSegment",
    "TracingSession",
    "ProbeContext",
    "Symbol",
    "SymbolLookupError",
    "SymbolTable",
    "KernelTracer",
    "Ros2InitTracer",
    "Ros2RtTracer",
]

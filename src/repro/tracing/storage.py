"""On-disk trace storage (the Fig. 2 "database server").

Traces are written as gzip-compressed JSON, one file per run, under a
directory.  The format round-trips losslessly through
``Trace.to_dict`` / ``Trace.from_dict``, so stored traces from one
session can be re-analysed later (or by another machine) without
re-running the applications -- the workflow the paper's segmented
multi-session collection targets.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import List

from .session import Trace, TraceDatabase

#: File suffix of stored traces.
TRACE_SUFFIX = ".trace.json.gz"


def save_trace(trace: Trace, path: str) -> None:
    """Write one trace to ``path`` (gzip JSON)."""
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        json.dump(trace.to_dict(), handle)


def load_trace(path: str) -> Trace:
    """Read one trace back."""
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        return Trace.from_dict(json.load(handle))


def save_database(database: TraceDatabase, directory: str) -> List[str]:
    """Write every run of a database into ``directory``.

    Returns the written file paths.  Existing files for the same run ids
    are overwritten; unrelated files are left alone.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for run_id in database.run_ids():
        path = os.path.join(directory, f"{run_id}{TRACE_SUFFIX}")
        save_trace(database.get(run_id), path)
        paths.append(path)
    return paths


def load_database(directory: str, allow_empty: bool = False) -> TraceDatabase:
    """Rebuild a database from every stored trace in ``directory``.

    A directory without a single ``*.trace.json.gz`` file raises (an
    empty database silently swallowing a mistyped path hid real data
    loss); pass ``allow_empty=True`` when an empty result is expected.
    """
    database = TraceDatabase()
    if not os.path.isdir(directory):
        raise FileNotFoundError(f"no such trace directory: {directory!r}")
    names = sorted(os.listdir(directory))
    for name in names:
        if not name.endswith(TRACE_SUFFIX):
            continue
        run_id = name[: -len(TRACE_SUFFIX)]
        database.add(run_id, load_trace(os.path.join(directory, name)))
    if not len(database) and not allow_empty:
        binary = [n for n in names if n.endswith(".trace.bin")]
        hint = (
            f" (found {len(binary)} binary .trace.bin segment(s): "
            "open them with repro.store.TraceStore)"
            if binary
            else ""
        )
        raise ValueError(
            f"no *{TRACE_SUFFIX} traces in {directory!r}{hint}; "
            "pass allow_empty=True if an empty database is expected"
        )
    return database

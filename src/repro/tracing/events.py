"""Trace event records and probe-name vocabulary.

Every userspace probe firing produces a :class:`TraceEvent` with the three
fields the paper requires (Sec. III-A): a timestamp for chronological
ordering, a PID associating the event with a ROS2 node, and a probe name
indicating what information the event carries.  Probe-specific payload
(topic names, callback ids, source timestamps, ...) travels in ``data``.

The module also defines the probe-name constants for Table I (P1..P16)
and the predicate helpers Alg. 1 switches on.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, NamedTuple, Optional

# --------------------------------------------------------------------------
# Probe names -- one per row of Table I.  ":entry" / ":exit" suffixes mirror
# uprobe vs uretprobe attachment.
# --------------------------------------------------------------------------

P1_CREATE_NODE = "rmw_create_node"
P2_TIMER_START = "execute_timer:entry"
P3_TIMER_CALL = "rcl_timer_call"
P4_TIMER_END = "execute_timer:exit"
P5_SUB_START = "execute_subscription:entry"
P6_TAKE = "rmw_take_int"
P7_SYNC_OP = "message_filters_operator"
P8_SUB_END = "execute_subscription:exit"
P9_SERVICE_START = "execute_service:entry"
P10_TAKE_REQUEST = "rmw_take_request"
P11_SERVICE_END = "execute_service:exit"
P12_CLIENT_START = "execute_client:entry"
P13_TAKE_RESPONSE = "rmw_take_response"
P14_TAKE_TYPE_ERASED = "take_type_erased_response"
P15_CLIENT_END = "execute_client:exit"
P16_DDS_WRITE = "dds_write_impl"

#: Probe name -> Table I row id, for reports and the Table I bench.
PROBE_TABLE = {
    P1_CREATE_NODE: "P1",
    P2_TIMER_START: "P2",
    P3_TIMER_CALL: "P3",
    P4_TIMER_END: "P4",
    P5_SUB_START: "P5",
    P6_TAKE: "P6",
    P7_SYNC_OP: "P7",
    P8_SUB_END: "P8",
    P9_SERVICE_START: "P9",
    P10_TAKE_REQUEST: "P10",
    P11_SERVICE_END: "P11",
    P12_CLIENT_START: "P12",
    P13_TAKE_RESPONSE: "P13",
    P14_TAKE_TYPE_ERASED: "P14",
    P15_CLIENT_END: "P15",
    P16_DDS_WRITE: "P16",
}

CB_START_PROBES = frozenset(
    {P2_TIMER_START, P5_SUB_START, P9_SERVICE_START, P12_CLIENT_START}
)
CB_END_PROBES = frozenset({P4_TIMER_END, P8_SUB_END, P11_SERVICE_END, P15_CLIENT_END})
TAKE_PROBES = frozenset({P6_TAKE, P10_TAKE_REQUEST, P13_TAKE_RESPONSE})

#: CB start probe -> callback type label used throughout the timing model.
CB_TYPE_BY_START = {
    P2_TIMER_START: "timer",
    P5_SUB_START: "subscriber",
    P9_SERVICE_START: "service",
    P12_CLIENT_START: "client",
}


#: Shared payload for events without probe-specific data.  TraceEvents
#: are immutable by contract -- nothing may mutate ``data`` -- so one
#: empty mapping can back every payload-less event.
_NO_DATA: Mapping[str, Any] = {}


class TraceEvent(NamedTuple):
    """One userspace probe firing.

    A ``NamedTuple`` rather than a frozen dataclass: one event is
    constructed per probe firing inside the simulation hot loop, where
    tuple construction is severalfold cheaper.  The immutability
    contract is unchanged (``data`` must never be mutated -- default
    instances share one empty mapping).

    Attributes
    ----------
    ts:
        Nanosecond timestamp (kernel clock at firing time).
    pid:
        PID of the traced thread (the ROS2 node's executor thread).
    probe:
        Probe name, one of the ``P*`` constants above.
    data:
        Probe-specific payload; keys used by the synthesis algorithms are
        ``topic``, ``cb_id``, ``src_ts``, ``service``, ``node``,
        ``will_dispatch``, ``timer_id``.
    """

    ts: int
    pid: int
    probe: str
    data: Mapping[str, Any] = _NO_DATA

    @property
    def pnum(self) -> Optional[str]:
        """Table I row id (``"P6"``), or None for non-Table-I probes."""
        return PROBE_TABLE.get(self.probe)

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    # -- predicates used by Alg. 1 --------------------------------------

    def is_cb_start(self) -> bool:
        return self.probe in CB_START_PROBES

    def is_cb_end(self) -> bool:
        return self.probe in CB_END_PROBES

    def is_take(self) -> bool:
        return self.probe in TAKE_PROBES

    def cb_type(self) -> str:
        """Callback type for a CB-start event ('timer', 'subscriber', ...)."""
        return CB_TYPE_BY_START[self.probe]

    def to_dict(self) -> Dict[str, Any]:
        """Serializable form (used by the trace database)."""
        return {"ts": self.ts, "pid": self.pid, "probe": self.probe, "data": dict(self.data)}

    @staticmethod
    def from_dict(raw: Mapping[str, Any]) -> "TraceEvent":
        return TraceEvent(
            ts=int(raw["ts"]),
            pid=int(raw["pid"]),
            probe=str(raw["probe"]),
            data=dict(raw.get("data", {})),
        )

"""eBPF machinery: programs, maps, perf buffers and probe attachment.

This is the simulator's stand-in for BCC (the paper uses BCC 0.26 +
LLVM-clang 10).  It reproduces the pieces of the eBPF runtime the
framework depends on:

* **uprobes / uretprobes** -- attach a handler to the entry or exit of a
  middleware function by symbol name (see :mod:`repro.tracing.symbols`),
* **tracepoints** -- attach to kernel events (``sched:sched_switch``,
  ``sched:sched_wakeup``) exposed by the simulated scheduler,
* **BPF maps** -- bounded key/value stores shared between programs (used
  for the PID filter set and the srcTS pointer stash),
* **perf buffers** -- bounded event channels from "kernel space" to the
  userspace tracer, with lost-event accounting,
* **program statistics** -- per-program ``run_cnt`` and ``run_time_ns``,
  what ``bpftool prog show`` reports; the paper's overhead numbers
  (0.008 CPU cores) come from exactly these counters.

Handlers run synchronously at the probed call site, i.e. in "kernel
context" at the simulated instant the traced thread executes the probed
function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .symbols import ProbeContext, SymbolTable

#: Modeled per-firing probe cost.  Real uprobe round trips cost on the
#: order of a microsecond; tracepoint handlers less.  These feed the
#: run_time_ns counters only (observer effect on the traced application
#: is not simulated, matching the paper's finding that it is negligible).
DEFAULT_UPROBE_COST_NS = 1_200
DEFAULT_TRACEPOINT_COST_NS = 400


class BpfError(RuntimeError):
    """Base error for the BPF substrate (failed attach, bad map use)."""


class BpfMap:
    """A bounded key/value map (``BPF_HASH`` semantics).

    ``update`` on a full map raises unless the map was created with
    ``lru=True``, in which case the least-recently-used entry is evicted
    -- the two behaviours BCC users pick between.
    """

    def __init__(self, name: str, max_entries: int = 10240, lru: bool = False):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.name = name
        self.max_entries = max_entries
        self.lru = lru
        self._data: Dict[Any, Any] = {}

    def lookup(self, key: Any, default: Any = None) -> Any:
        if key in self._data:
            value = self._data.pop(key)
            self._data[key] = value  # refresh LRU order
            return value
        return default

    def update(self, key: Any, value: Any) -> None:
        if key not in self._data and len(self._data) >= self.max_entries:
            if not self.lru:
                raise BpfError(f"map {self.name!r} full ({self.max_entries} entries)")
            oldest = next(iter(self._data))
            del self._data[oldest]
        self._data.pop(key, None)
        self._data[key] = value

    def delete(self, key: Any) -> None:
        self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> List[Tuple[Any, Any]]:
        return list(self._data.items())


class PerfBuffer:
    """Bounded event channel from probe handlers to the tracer.

    Real perf buffers are per-CPU byte rings; we model a single ring with
    an event-count capacity and byte accounting.  Overflow drops events
    and counts them, like ``lost_cb`` in BCC.
    """

    def __init__(self, name: str, capacity: int = 1 << 16):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._events: List[Any] = []
        self.lost = 0
        self.submitted = 0
        self.bytes_submitted = 0

    def submit(self, event: Any, size: int = 64) -> bool:
        """Push one event of ``size`` bytes; False if it was dropped.

        NOTE: two hot probe paths inline this body to skip the call
        frame -- ``repro.tracing.probes._submit`` and
        ``repro.tracing.tracers.KernelTracer._on_switch``.  Any change
        to the accounting/overflow semantics here must be mirrored
        there.
        """
        self.submitted += 1
        if len(self._events) >= self.capacity:
            self.lost += 1
            return False
        self._events.append(event)
        self.bytes_submitted += size
        return True

    def poll(self) -> List[Any]:
        """Drain all buffered events (the userspace ``perf_buffer_poll``)."""
        events, self._events = self._events, []
        return events

    def __len__(self) -> int:
        return len(self._events)


@dataclass
class BpfProgram:
    """A loaded eBPF program attached to one probe point."""

    name: str
    kind: str  # "uprobe" | "uretprobe" | "tracepoint"
    target: str  # symbol or tracepoint name
    cost_ns: int
    run_cnt: int = 0
    _detach: Optional[Callable[[], None]] = field(default=None, repr=False)

    @property
    def run_time_ns(self) -> int:
        """Derived, not accumulated: the modeled per-firing cost is a
        constant, so the hot path pays one counter increment per firing
        instead of two."""
        return self.run_cnt * self.cost_ns

    def account(self) -> None:
        self.run_cnt += 1


class Bpf:
    """The BCC-style front end: owns programs, maps and perf buffers.

    Parameters
    ----------
    symbols:
        Symbol table of the simulated middleware libraries.
    tracepoints:
        Mapping from tracepoint name (``"sched:sched_switch"``) to an
        attach function ``attach(handler) -> detach``.
    """

    def __init__(
        self,
        symbols: SymbolTable,
        tracepoints: Optional[Dict[str, Callable[[Callable[[Any], None]], Callable[[], None]]]] = None,
    ):
        self.symbols = symbols
        self._tracepoints = dict(tracepoints or {})
        self.programs: List[BpfProgram] = []
        self.maps: Dict[str, BpfMap] = {}
        self.perf_buffers: Dict[str, PerfBuffer] = {}

    # -- resources ---------------------------------------------------------

    def get_table(self, name: str, max_entries: int = 10240, lru: bool = False) -> BpfMap:
        """Create or fetch a named BPF map (shared between programs)."""
        table = self.maps.get(name)
        if table is None:
            table = BpfMap(name, max_entries=max_entries, lru=lru)
            self.maps[name] = table
        return table

    def open_perf_buffer(self, name: str, capacity: int = 1 << 16) -> PerfBuffer:
        buffer = self.perf_buffers.get(name)
        if buffer is None:
            buffer = PerfBuffer(name, capacity=capacity)
            self.perf_buffers[name] = buffer
        return buffer

    # -- attachment ----------------------------------------------------------

    def attach_uprobe(
        self,
        symbol: str,
        handler: Callable[[ProbeContext, Tuple[Any, ...]], None],
        name: Optional[str] = None,
        cost_ns: int = DEFAULT_UPROBE_COST_NS,
    ) -> BpfProgram:
        """Attach ``handler`` to the entry of ``symbol`` (``lib:func``)."""
        program = BpfProgram(
            name=name or f"uprobe__{symbol}",
            kind="uprobe",
            target=symbol,
            cost_ns=cost_ns,
        )

        def trampoline(ctx: ProbeContext, args: Tuple[Any, ...]) -> None:
            program.run_cnt += 1
            handler(ctx, args)

        program._detach = self.symbols.attach_entry(symbol, trampoline)
        self.programs.append(program)
        return program

    def load_uprobe(
        self,
        symbol: str,
        factory: Callable[[BpfProgram], Callable[[ProbeContext, Tuple[Any, ...]], None]],
        name: Optional[str] = None,
        cost_ns: int = DEFAULT_UPROBE_COST_NS,
    ) -> BpfProgram:
        """Fused-attach variant of :meth:`attach_uprobe` for hot probes.

        ``factory(program)`` returns the handler, which is attached
        *directly* (no accounting trampoline, hence one call frame less
        per firing).  The handler itself must bump ``program.run_cnt``
        once per firing -- that is the whole accounting contract, since
        ``run_time_ns`` is derived from the count.
        """
        program = BpfProgram(
            name=name or f"uprobe__{symbol}",
            kind="uprobe",
            target=symbol,
            cost_ns=cost_ns,
        )
        program._detach = self.symbols.attach_entry(symbol, factory(program))
        self.programs.append(program)
        return program

    def attach_uretprobe(
        self,
        symbol: str,
        handler: Callable[[ProbeContext, Tuple[Any, ...], Any], None],
        name: Optional[str] = None,
        cost_ns: int = DEFAULT_UPROBE_COST_NS,
    ) -> BpfProgram:
        """Attach ``handler`` to the return of ``symbol``; it receives the
        function's return value, like a uretprobe reading ``rax``."""
        program = BpfProgram(
            name=name or f"uretprobe__{symbol}",
            kind="uretprobe",
            target=symbol,
            cost_ns=cost_ns,
        )

        def trampoline(ctx: ProbeContext, args: Tuple[Any, ...], retval: Any) -> None:
            program.run_cnt += 1
            handler(ctx, args, retval)

        program._detach = self.symbols.attach_exit(symbol, trampoline)
        self.programs.append(program)
        return program

    def load_uretprobe(
        self,
        symbol: str,
        factory: Callable[
            [BpfProgram], Callable[[ProbeContext, Tuple[Any, ...], Any], None]
        ],
        name: Optional[str] = None,
        cost_ns: int = DEFAULT_UPROBE_COST_NS,
    ) -> BpfProgram:
        """Fused-attach uretprobe (see :meth:`load_uprobe`)."""
        program = BpfProgram(
            name=name or f"uretprobe__{symbol}",
            kind="uretprobe",
            target=symbol,
            cost_ns=cost_ns,
        )
        program._detach = self.symbols.attach_exit(symbol, factory(program))
        self.programs.append(program)
        return program

    def attach_tracepoint(
        self,
        tracepoint: str,
        handler: Callable[[Any], None],
        name: Optional[str] = None,
        cost_ns: int = DEFAULT_TRACEPOINT_COST_NS,
    ) -> BpfProgram:
        """Attach ``handler`` to a kernel tracepoint."""
        try:
            attach = self._tracepoints[tracepoint]
        except KeyError:
            raise BpfError(
                f"unknown tracepoint {tracepoint!r} "
                f"(known: {sorted(self._tracepoints)})"
            ) from None
        program = BpfProgram(
            name=name or f"tracepoint__{tracepoint.replace(':', '__')}",
            kind="tracepoint",
            target=tracepoint,
            cost_ns=cost_ns,
        )

        def trampoline(record: Any) -> None:
            program.run_cnt += 1
            handler(record)

        program._detach = attach(trampoline)
        self.programs.append(program)
        return program

    def load_tracepoint(
        self,
        tracepoint: str,
        factory: Callable[[BpfProgram], Callable[[Any], None]],
        name: Optional[str] = None,
        cost_ns: int = DEFAULT_TRACEPOINT_COST_NS,
    ) -> BpfProgram:
        """Fused-attach tracepoint (see :meth:`load_uprobe`)."""
        try:
            attach = self._tracepoints[tracepoint]
        except KeyError:
            raise BpfError(
                f"unknown tracepoint {tracepoint!r} "
                f"(known: {sorted(self._tracepoints)})"
            ) from None
        program = BpfProgram(
            name=name or f"tracepoint__{tracepoint.replace(':', '__')}",
            kind="tracepoint",
            target=tracepoint,
            cost_ns=cost_ns,
        )
        program._detach = attach(factory(program))
        self.programs.append(program)
        return program

    # -- lifecycle -----------------------------------------------------------

    def detach_all(self) -> None:
        """Detach every program (keeps statistics, like unloading probes)."""
        for program in self.programs:
            if program._detach is not None:
                program._detach()
                program._detach = None

    # -- bpftool-style reporting ----------------------------------------------

    def program_stats(self) -> List[Dict[str, Any]]:
        """Per-program counters as ``bpftool prog show`` reports them."""
        return [
            {
                "name": p.name,
                "kind": p.kind,
                "target": p.target,
                "run_cnt": p.run_cnt,
                "run_time_ns": p.run_time_ns,
            }
            for p in self.programs
        ]

    def total_run_time_ns(self) -> int:
        return sum(p.run_time_ns for p in self.programs)

    def total_run_cnt(self) -> int:
        return sum(p.run_cnt for p in self.programs)

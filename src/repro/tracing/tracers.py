"""The three tracers of the proposed framework (Fig. 1).

* :class:`Ros2InitTracer` (TR-IN) -- attaches P1 and records node
  creation, discovering the node-name -> PID mapping.  It publishes the
  discovered PIDs into the ``ros2_pids`` BPF map consumed by the kernel
  tracer's in-kernel filter.
* :class:`Ros2RtTracer` (TR-RT) -- attaches P2..P16 and records the
  runtime ROS2 events.
* :class:`KernelTracer` (TR-KN) -- attaches to ``sched:sched_switch``
  and records only events involving ROS2 PIDs (unless filtering is
  disabled, the configuration used by the filtering ablation; the paper
  reports that PID filtering cuts the kernel-trace footprint by 3x or
  more).

Tracers attach on ``start`` and detach on ``stop``; their perf buffers
can be drained (``poll``) any number of times in between, which is what
the segmented collection of Fig. 2 builds on.
"""

from __future__ import annotations

from typing import Any, List

from .bpf import DEFAULT_TRACEPOINT_COST_NS, Bpf, BpfProgram, PerfBuffer
from .events import TraceEvent
from .overhead import SCHED_EVENT_BYTES
from .probes import ROS2_PIDS_MAP, InitProbes, RuntimeProbes


class _TracerBase:
    """Attach/detach lifecycle shared by all tracers."""

    def __init__(self) -> None:
        self._programs: List[BpfProgram] = []
        self.running = False

    def start(self) -> None:
        if self.running:
            raise RuntimeError(f"{type(self).__name__} already running")
        self.running = True
        self._attach()

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        for program in self._programs:
            if program._detach is not None:
                program._detach()
                program._detach = None
        self._programs.clear()

    def _attach(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class Ros2InitTracer(_TracerBase):
    """TR-IN: node-initialization tracer (probe P1)."""

    def __init__(self, bpf: Bpf, buffer_capacity: int = 1 << 12):
        super().__init__()
        self.bpf = bpf
        self.buffer: PerfBuffer = bpf.open_perf_buffer("ros2_init", buffer_capacity)
        self._probes = InitProbes(bpf, self.buffer)

    def _attach(self) -> None:
        before = len(self.bpf.programs)
        self._probes.attach()
        self._programs = self.bpf.programs[before:]

    def poll(self) -> List[TraceEvent]:
        return self.buffer.poll()

    def discovered_pids(self) -> List[int]:
        """PIDs currently in the shared ``ros2_pids`` map."""
        return [pid for pid, _ in self.bpf.get_table(ROS2_PIDS_MAP).items()]


class Ros2RtTracer(_TracerBase):
    """TR-RT: runtime ROS2 tracer (probes P2..P16)."""

    def __init__(self, bpf: Bpf, buffer_capacity: int = 1 << 20):
        super().__init__()
        self.bpf = bpf
        self.buffer: PerfBuffer = bpf.open_perf_buffer("ros2_rt", buffer_capacity)
        self._probes = RuntimeProbes(bpf, self.buffer)

    def _attach(self) -> None:
        before = len(self.bpf.programs)
        self._probes.attach()
        self._programs = self.bpf.programs[before:]

    def poll(self) -> List[TraceEvent]:
        return self.buffer.poll()


class KernelTracer(_TracerBase):
    """TR-KN: sched_switch tracer with in-kernel PID filtering."""

    def __init__(
        self,
        bpf: Bpf,
        filtered: bool = True,
        buffer_capacity: int = 1 << 21,
        record_wakeups: bool = False,
    ):
        super().__init__()
        self.bpf = bpf
        self.filtered = filtered
        self.record_wakeups = record_wakeups
        self.buffer: PerfBuffer = bpf.open_perf_buffer("sched", buffer_capacity)
        self.wakeup_buffer: PerfBuffer = bpf.open_perf_buffer(
            "sched_wakeup", buffer_capacity
        )
        self.pid_map = bpf.get_table(ROS2_PIDS_MAP)
        #: The in-kernel filter reads the map's backing dict directly
        #: (one ``in`` per pid instead of two ``BpfMap.__contains__``
        #: frames per switch).  ``_data`` is never rebound, so the
        #: alias stays live across ``update``/``clear``.
        self._pids = self.pid_map._data
        #: All tracepoint firings, including filtered-out ones -- the
        #: denominator of the footprint-reduction ablation.
        self.seen = 0
        #: Accounting target of ``_on_switch`` (the handler bumps
        #: ``run_cnt`` itself: it attaches through ``load_tracepoint``,
        #: skipping the per-firing trampoline).  A placeholder program
        #: until ``start`` attaches the real one, so the handler is
        #: callable stand-alone (unit tests drive it directly).
        self._switch_program = BpfProgram(
            name="TRKN.sched_switch",
            kind="tracepoint",
            target="sched:sched_switch",
            cost_ns=DEFAULT_TRACEPOINT_COST_NS,
        )

    def _attach(self) -> None:
        def factory(program: BpfProgram):
            # Fused copy of _on_switch (which stays as the reference
            # implementation for stand-alone/unit use; keep in sync):
            # captures the program, pid dict and buffer once, so the
            # per-switch firing does no tracer attribute lookups.
            self._switch_program = program
            tracer = self
            pids = self._pids
            buffer = self.buffer
            filtered = self.filtered
            capacity = buffer.capacity

            def on_switch(record: Any) -> None:
                program.run_cnt += 1
                tracer.seen += 1
                if filtered and record[2] not in pids and record[6] not in pids:
                    return
                buffer.submitted += 1
                events = buffer._events
                if len(events) >= capacity:
                    buffer.lost += 1
                    return
                events.append(record)
                buffer.bytes_submitted += SCHED_EVENT_BYTES

            return on_switch

        program = self.bpf.load_tracepoint(
            "sched:sched_switch", factory, name="TRKN.sched_switch"
        )
        self._programs = [program]
        if self.record_wakeups:
            # The paper's proposed extension (Sec. VII): trace
            # sched_wakeup to measure callback waiting times.
            self._programs.append(
                self.bpf.attach_tracepoint(
                    "sched:sched_wakeup", self._on_wakeup, name="TRKN.sched_wakeup"
                )
            )

    def _on_switch(self, record: Any) -> None:
        self._switch_program.run_cnt += 1
        self.seen += 1
        if self.filtered:
            pids = self._pids
            if record[2] not in pids and record[6] not in pids:
                return  # record[2]/[6]: SchedSwitch prev_pid/next_pid
        # Inlined copy of PerfBuffer.submit (hot: one firing per context
        # switch); keep in sync with it and with probes._submit.
        buffer = self.buffer
        buffer.submitted += 1
        events = buffer._events
        if len(events) >= buffer.capacity:
            buffer.lost += 1
            return
        events.append(record)
        buffer.bytes_submitted += SCHED_EVENT_BYTES

    def _on_wakeup(self, record: Any) -> None:
        if self.filtered and record.pid not in self.pid_map:
            return
        self.wakeup_buffer.submit(record, size=SCHED_EVENT_BYTES)

    def poll(self) -> List[Any]:
        return self.buffer.poll()

    def poll_wakeups(self) -> List[Any]:
        return self.wakeup_buffer.poll()

"""The paper's probe suite: Table I (P1..P16) as eBPF programs.

Each probe is an entry/exit handler attached to a middleware symbol; it
traverses the probed function's argument structures (node, timer,
subscription, service, client, writer objects) to extract exactly the
fields Table I lists, then submits a :class:`TraceEvent` into a perf
buffer.

The srcTS technique of Sec. III-A is reproduced literally for
``rmw_take_int`` / ``rmw_take_request`` / ``rmw_take_response``: the
source timestamp is written *by reference* into the ``rmw_message_info``
out-parameter and is unknown at function entry, so the entry probe
stashes the reference in a BPF map keyed by PID and the exit probe reads
the value through the stashed reference before submitting the event.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from .bpf import Bpf, BpfMap, BpfProgram, PerfBuffer
from .events import (
    _NO_DATA,
    P1_CREATE_NODE,
    P2_TIMER_START,
    P3_TIMER_CALL,
    P4_TIMER_END,
    P5_SUB_START,
    P6_TAKE,
    P7_SYNC_OP,
    P8_SUB_END,
    P9_SERVICE_START,
    P10_TAKE_REQUEST,
    P11_SERVICE_END,
    P12_CLIENT_START,
    P13_TAKE_RESPONSE,
    P14_TAKE_TYPE_ERASED,
    P15_CLIENT_END,
    P16_DDS_WRITE,
    TraceEvent,
)
from .overhead import EVENT_HEADER_BYTES
from .symbols import ProbeContext

#: Name of the BPF map sharing discovered ROS2 PIDs between the
#: ROS2-INIT tracer and the kernel tracer (Sec. III-B).
ROS2_PIDS_MAP = "ros2_pids"

#: Name of the BPF map used by the srcTS entry/exit pointer stash.
SRCTS_STASH_MAP = "srcts_stash"


def _submit(buffer: PerfBuffer, event: TraceEvent) -> None:
    # Inlined copies of overhead.event_size_bytes() and
    # PerfBuffer.submit(): one firing per traced middleware call makes
    # each saved frame measurable.  Keep in sync with both originals
    # (the other inlined submit lives in tracers.KernelTracer._on_switch).
    # The capacity check runs before the size computation: a lost event
    # never contributes to bytes_submitted, so its size is dead work.
    buffer.submitted += 1
    events = buffer._events
    if len(events) >= buffer.capacity:
        buffer.lost += 1
        return
    events.append(event)
    size = EVENT_HEADER_BYTES
    data = event.data
    if data:
        for value in data.values():
            size += len(value) + 1 if type(value) is str else 8
    buffer.bytes_submitted += size


class InitProbes:
    """P1: node-creation probe used by the ROS2-INIT tracer."""

    def __init__(self, bpf: Bpf, buffer: PerfBuffer):
        self.bpf = bpf
        self.buffer = buffer
        self.pid_map: BpfMap = bpf.get_table(ROS2_PIDS_MAP)

    def attach(self) -> None:
        self.bpf.attach_uprobe(
            "rmw_cyclonedds_cpp:rmw_create_node", self._on_create_node, name="P1"
        )

    def _on_create_node(self, ctx: ProbeContext, args: Tuple[Any, ...]) -> None:
        node = args[0]
        # Share the PID with the kernel tracer through the BPF map.
        self.pid_map.update(ctx.pid, 1)
        _submit(
            self.buffer,
            TraceEvent(
                ctx[0],
                ctx[1],
                P1_CREATE_NODE,
                {"node": node.name},
            ),
        )


class RuntimeProbes:
    """P2..P16: the runtime probes used by the ROS2-RT tracer.

    The handlers are *fused closures* built at attach time through the
    :meth:`~repro.tracing.bpf.Bpf.load_uprobe` family: program
    accounting, field extraction, event construction and the perf-buffer
    submit are one call frame per firing (plus the C-level
    ``tuple.__new__``), where the original pipeline traversed trampoline
    -> bound handler -> ``_submit`` -> ``TraceEvent.__new__``.  One
    firing happens per traced middleware call, so the ~4 saved frames
    dominate runtime-tracing overhead.  Three consequences of fusing:

    * events are built with ``tuple.__new__(TraceEvent, (...))`` --
      identical tuples to the keyword constructor at half the cost
      (payload-free probes share the class-level ``_NO_DATA`` mapping,
      exactly like the constructor default);
    * encoded sizes are probe-shaped constants (header + per-field
      sizes) instead of a generic ``event_size_bytes`` dict walk -- the
      accounting is value-identical because every probe's payload schema
      is fixed;
    * the srcTS stash bypasses the :class:`BpfMap` method surface and
      uses its backing dict: the stash is keyed by PID, far below the
      map's capacity, and non-LRU, so ``update``/``lookup``/``delete``
      reduce to plain dict ops.
    """

    def __init__(self, bpf: Bpf, buffer: PerfBuffer):
        self.bpf = bpf
        self.buffer = buffer
        self.srcts_stash: BpfMap = bpf.get_table(SRCTS_STASH_MAP)

    def attach(self) -> None:
        bpf = self.bpf
        buffer = self.buffer
        stash = self.srcts_stash._data
        tuple_new = tuple.__new__
        event_cls = TraceEvent
        header = EVENT_HEADER_BYTES
        no_data = _NO_DATA
        capacity = buffer.capacity  # fixed at construction

        def simple(probe: str):
            """Factory-maker for the payload-free execute_* edges."""

            def factory(program: BpfProgram):
                def fire(ctx, args, ret=None):
                    program.run_cnt += 1
                    buffer.submitted += 1
                    events = buffer._events
                    if len(events) >= capacity:
                        buffer.lost += 1
                        return
                    events.append(
                        tuple_new(event_cls, (ctx[0], ctx[1], probe, no_data))
                    )
                    buffer.bytes_submitted += header

                return fire

            return factory

        def take_entry(program: BpfProgram):
            """Entry of any rmw_take_*: the srcTS out-parameter is not
            filled yet; stash its address (here: the object reference),
            keyed by PID."""

            def fire(ctx, args):
                program.run_cnt += 1
                stash[ctx[1]] = args[-1]

            return fire

        def timer_call(program: BpfProgram):
            def fire(ctx, args):
                program.run_cnt += 1
                buffer.submitted += 1
                events = buffer._events
                if len(events) >= capacity:
                    buffer.lost += 1
                    return
                cb = args[0].cb_id
                events.append(
                    tuple_new(
                        event_cls, (ctx[0], ctx[1], P3_TIMER_CALL, {"cb_id": cb})
                    )
                )
                buffer.bytes_submitted += header + len(cb) + 1

            return fire

        def take_int_exit(program: BpfProgram):
            def fire(ctx, args, ret):
                program.run_cnt += 1
                msg_info = stash.pop(ctx[1], None)
                buffer.submitted += 1
                events = buffer._events
                if len(events) >= capacity:
                    buffer.lost += 1
                    return
                sub = args[0]
                cb = sub.cb_id
                topic = sub.topic
                events.append(
                    tuple_new(
                        event_cls,
                        (
                            ctx[0],
                            ctx[1],
                            P6_TAKE,
                            {
                                "cb_id": cb,
                                "topic": topic,
                                "src_ts": None if msg_info is None else msg_info.src_ts,
                            },
                        ),
                    )
                )
                buffer.bytes_submitted += header + len(cb) + len(topic) + 10

            return fire

        def take_request_exit(program: BpfProgram):
            def fire(ctx, args, ret):
                program.run_cnt += 1
                msg_info = stash.pop(ctx[1], None)
                buffer.submitted += 1
                events = buffer._events
                if len(events) >= capacity:
                    buffer.lost += 1
                    return
                service = args[0]
                cb = service.cb_id
                topic = service.request_topic
                name = service.name
                events.append(
                    tuple_new(
                        event_cls,
                        (
                            ctx[0],
                            ctx[1],
                            P10_TAKE_REQUEST,
                            {
                                "cb_id": cb,
                                "topic": topic,
                                "service": name,
                                "src_ts": None if msg_info is None else msg_info.src_ts,
                            },
                        ),
                    )
                )
                buffer.bytes_submitted += (
                    header + len(cb) + len(topic) + len(name) + 11
                )

            return fire

        def take_response_exit(program: BpfProgram):
            def fire(ctx, args, ret):
                program.run_cnt += 1
                msg_info = stash.pop(ctx[1], None)
                buffer.submitted += 1
                events = buffer._events
                if len(events) >= capacity:
                    buffer.lost += 1
                    return
                client = args[0]
                cb = client.cb_id
                topic = client.reader.topic.name
                name = client.service_name
                events.append(
                    tuple_new(
                        event_cls,
                        (
                            ctx[0],
                            ctx[1],
                            P13_TAKE_RESPONSE,
                            {
                                "cb_id": cb,
                                "topic": topic,
                                "service": name,
                                "src_ts": None if msg_info is None else msg_info.src_ts,
                            },
                        ),
                    )
                )
                buffer.bytes_submitted += (
                    header + len(cb) + len(topic) + len(name) + 11
                )

            return fire

        def take_type_erased_exit(program: BpfProgram):
            def fire(ctx, args, ret):
                program.run_cnt += 1
                buffer.submitted += 1
                events = buffer._events
                if len(events) >= capacity:
                    buffer.lost += 1
                    return
                events.append(
                    tuple_new(
                        event_cls,
                        (
                            ctx[0],
                            ctx[1],
                            P14_TAKE_TYPE_ERASED,
                            {"will_dispatch": int(bool(ret))},
                        ),
                    )
                )
                buffer.bytes_submitted += header + 8

            return fire

        def sync_operator(program: BpfProgram):
            def fire(ctx, args):
                program.run_cnt += 1
                buffer.submitted += 1
                events = buffer._events
                if len(events) >= capacity:
                    buffer.lost += 1
                    return
                cb = args[0].cb_id
                events.append(
                    tuple_new(event_cls, (ctx[0], ctx[1], P7_SYNC_OP, {"cb_id": cb}))
                )
                buffer.bytes_submitted += header + len(cb) + 1

            return fire

        def dds_write(program: BpfProgram):
            def fire(ctx, args):
                program.run_cnt += 1
                buffer.submitted += 1
                events = buffer._events
                if len(events) >= capacity:
                    buffer.lost += 1
                    return
                writer = args[0]
                topic = writer.topic.name
                kind = writer.kind
                events.append(
                    tuple_new(
                        event_cls,
                        (
                            ctx[0],
                            ctx[1],
                            P16_DDS_WRITE,
                            {"topic": topic, "src_ts": args[2], "kind": kind},
                        ),
                    )
                )
                buffer.bytes_submitted += header + len(topic) + len(kind) + 10

            return fire

        load_u = bpf.load_uprobe
        load_r = bpf.load_uretprobe
        # Timer callbacks: P2 (start), P3 (ID), P4 (end).
        load_u("rclcpp:execute_timer", simple(P2_TIMER_START), name="P2")
        load_u("rcl:rcl_timer_call", timer_call, name="P3")
        load_r("rclcpp:execute_timer", simple(P4_TIMER_END), name="P4")
        # Subscriber callbacks: P5 (start), P6 (take), P7 (sync), P8 (end).
        load_u("rclcpp:execute_subscription", simple(P5_SUB_START), name="P5")
        load_u("rmw_cyclonedds_cpp:rmw_take_int", take_entry, name="P6.entry")
        load_r("rmw_cyclonedds_cpp:rmw_take_int", take_int_exit, name="P6")
        load_u("message_filters:operator()", sync_operator, name="P7")
        load_r("rclcpp:execute_subscription", simple(P8_SUB_END), name="P8")
        # Service callbacks: P9 (start), P10 (take request), P11 (end).
        load_u("rclcpp:execute_service", simple(P9_SERVICE_START), name="P9")
        load_u("rmw_cyclonedds_cpp:rmw_take_request", take_entry, name="P10.entry")
        load_r("rmw_cyclonedds_cpp:rmw_take_request", take_request_exit, name="P10")
        load_r("rclcpp:execute_service", simple(P11_SERVICE_END), name="P11")
        # Client callbacks: P12 (start), P13 (take response), P14
        # (dispatch decision), P15 (end).
        load_u("rclcpp:execute_client", simple(P12_CLIENT_START), name="P12")
        load_u("rmw_cyclonedds_cpp:rmw_take_response", take_entry, name="P13.entry")
        load_r("rmw_cyclonedds_cpp:rmw_take_response", take_response_exit, name="P13")
        load_r("rclcpp:take_type_erased_response", take_type_erased_exit, name="P14")
        load_r("rclcpp:execute_client", simple(P15_CLIENT_END), name="P15")
        # DDS writes: P16.
        load_u("cyclonedds:dds_write_impl", dds_write, name="P16")

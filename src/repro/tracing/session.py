"""Tracing sessions, trace segments and the trace database (Fig. 2).

Deployment workflow reproduced from the paper:

1. ``start_init()`` before the applications launch; TR-IN discovers the
   node -> PID mapping and can be stopped after initialization.
2. ``start_runtime()`` activates TR-RT and TR-KN.
3. For long runs, ``rotate()`` drains the (bounded) trace buffers into a
   :class:`TraceSegment` and restarts collection with empty buffers --
   the segmented collection of Fig. 2.
4. ``stop_runtime()`` performs a final rotation; :meth:`trace` merges
   everything into a single chronologically-sorted :class:`Trace`.

Multiple runs accumulate in a :class:`TraceDatabase`, the "database
server" of Fig. 2, which the model-synthesis stage consumes either as a
merged trace or run-by-run (DAG-per-trace, then DAG merge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import merge as _heap_merge
from operator import attrgetter
from typing import Any, Dict, Iterable, List, Optional

from ..sim.scheduler import SchedSwitch, SchedWakeup
from .bpf import Bpf
from .events import P1_CREATE_NODE, TraceEvent
from .tracers import KernelTracer, Ros2InitTracer, Ros2RtTracer


_BY_TS = attrgetter("ts")


def _sort_if_needed(events: List[Any]) -> None:
    """Stable in-place sort, skipped after an O(N) monotonicity check.

    Traces are sorted by contract, so rotation/persistence round trips
    hit the check and never pay the re-sort the pre-TraceIndex code
    performed unconditionally.
    """
    previous = None
    for event in events:
        ts = event.ts
        if previous is not None and ts < previous:
            events.sort(key=_BY_TS)
            return
        previous = ts


def _merge_sorted(streams: List[List[Any]]) -> List[Any]:
    """K-way merge of per-trace streams into one chronological list.

    Inputs that honour the sorted-trace contract merge in O(N log k)
    without re-sorting; ties keep input-stream order, matching what the
    old extend-then-stable-sort produced byte for byte.  An unsorted
    input falls back to the stable full sort.
    """
    populated = [stream for stream in streams if stream]
    if not populated:
        return []
    if len(populated) == 1:
        return list(populated[0])
    if all(
        all(s[i].ts <= s[i + 1].ts for i in range(len(s) - 1))
        for s in populated
    ):
        return list(_heap_merge(*populated, key=_BY_TS))
    flat: List[Any] = []
    for stream in populated:
        flat.extend(stream)
    flat.sort(key=_BY_TS)
    return flat


@dataclass
class TraceSegment:
    """Events collected in one buffer rotation."""

    index: int
    start_ts: int
    stop_ts: int
    ros_events: List[TraceEvent] = field(default_factory=list)
    sched_events: List[SchedSwitch] = field(default_factory=list)
    wakeup_events: List[SchedWakeup] = field(default_factory=list)


@dataclass
class Trace:
    """A complete trace of one application run.

    ``pid_map`` carries TR-IN's discovery (PID -> node name); both event
    lists are chronologically sorted.
    """

    ros_events: List[TraceEvent] = field(default_factory=list)
    sched_events: List[SchedSwitch] = field(default_factory=list)
    wakeup_events: List[SchedWakeup] = field(default_factory=list)
    pid_map: Dict[int, str] = field(default_factory=dict)
    start_ts: int = 0
    stop_ts: int = 0

    def sort(self) -> "Trace":
        _sort_if_needed(self.ros_events)
        _sort_if_needed(self.sched_events)
        _sort_if_needed(self.wakeup_events)
        return self

    def events_for_pid(self, pid: int) -> List[TraceEvent]:
        return [e for e in self.ros_events if e.pid == pid]

    def pids(self) -> List[int]:
        return sorted(self.pid_map)

    @property
    def duration_ns(self) -> int:
        return max(0, self.stop_ts - self.start_ts)

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "start_ts": self.start_ts,
            "stop_ts": self.stop_ts,
            "pid_map": {str(k): v for k, v in self.pid_map.items()},
            "ros_events": [e.to_dict() for e in self.ros_events],
            "sched_events": [e._asdict() for e in self.sched_events],
            "wakeup_events": [e._asdict() for e in self.wakeup_events],
        }

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "Trace":
        return Trace(
            ros_events=[TraceEvent.from_dict(e) for e in raw["ros_events"]],
            sched_events=[SchedSwitch(**e) for e in raw["sched_events"]],
            wakeup_events=[SchedWakeup(**e) for e in raw.get("wakeup_events", [])],
            pid_map={int(k): v for k, v in raw["pid_map"].items()},
            start_ts=int(raw["start_ts"]),
            stop_ts=int(raw["stop_ts"]),
        ).sort()

    @staticmethod
    def merge(traces: Iterable["Trace"]) -> "Trace":
        """Merge traces into one (Fig. 2's "merge traces" path).

        Per-trace streams are chronologically sorted by contract, so a
        k-way merge assembles the combined streams without the full
        re-sort the pre-TraceIndex implementation performed.
        """
        traces = list(traces)
        if not traces:
            raise ValueError("nothing to merge")
        merged = Trace(
            ros_events=_merge_sorted([t.ros_events for t in traces]),
            sched_events=_merge_sorted([t.sched_events for t in traces]),
            wakeup_events=_merge_sorted([t.wakeup_events for t in traces]),
        )
        for trace in traces:
            merged.pid_map.update(trace.pid_map)
        merged.start_ts = min(t.start_ts for t in traces)
        merged.stop_ts = max(t.stop_ts for t in traces)
        return merged


class TracingSession:
    """Drives the three tracers against one :class:`~repro.world.World`."""

    def __init__(
        self,
        world,
        kernel_filter: bool = True,
        rt_buffer_capacity: int = 1 << 20,
        kernel_buffer_capacity: int = 1 << 21,
        record_wakeups: bool = False,
    ):
        self.world = world
        self.bpf = Bpf(world.symbols, world.tracepoints)
        self.init_tracer = Ros2InitTracer(self.bpf)
        self.rt_tracer = Ros2RtTracer(self.bpf, buffer_capacity=rt_buffer_capacity)
        self.kernel_tracer = KernelTracer(
            self.bpf,
            filtered=kernel_filter,
            buffer_capacity=kernel_buffer_capacity,
            record_wakeups=record_wakeups,
        )
        self.segments: List[TraceSegment] = []
        self._init_events: List[TraceEvent] = []
        self._segment_start: Optional[int] = None
        self._runtime_started_ts: Optional[int] = None

    # -- TR-IN ------------------------------------------------------------

    def start_init(self) -> None:
        self.init_tracer.start()

    def stop_init(self) -> None:
        self._init_events.extend(self.init_tracer.poll())
        self.init_tracer.stop()

    # -- TR-RT + TR-KN ------------------------------------------------------

    def start_runtime(self) -> None:
        self.rt_tracer.start()
        self.kernel_tracer.start()
        self._segment_start = self.world.now
        if self._runtime_started_ts is None:
            self._runtime_started_ts = self.world.now

    def rotate(self) -> TraceSegment:
        """Save the current buffers as a segment; keep collecting."""
        if self._segment_start is None:
            raise RuntimeError("runtime tracers not started")
        segment = TraceSegment(
            index=len(self.segments),
            start_ts=self._segment_start,
            stop_ts=self.world.now,
            ros_events=self.rt_tracer.poll(),
            sched_events=self.kernel_tracer.poll(),
            wakeup_events=self.kernel_tracer.poll_wakeups(),
        )
        self.segments.append(segment)
        self._segment_start = self.world.now
        return segment

    def stop_runtime(self) -> None:
        if self._segment_start is not None:
            self.rotate()
            self._segment_start = None
        self.rt_tracer.stop()
        self.kernel_tracer.stop()

    # -- results ----------------------------------------------------------

    def init_events(self) -> List[TraceEvent]:
        """TR-IN's collected events (chronologically first in a trace);
        consumers that stream segments out-of-core spool these before
        the runtime rotations."""
        self._init_events.extend(self.init_tracer.poll())
        return list(self._init_events)

    def pid_map(self) -> Dict[int, str]:
        self._init_events.extend(self.init_tracer.poll())
        return {
            e.pid: e.get("node")
            for e in self._init_events
            if e.probe == P1_CREATE_NODE
        }

    def trace(self) -> Trace:
        """Merge the init events and all segments into one trace."""
        trace = Trace(pid_map=self.pid_map())
        trace.ros_events.extend(self._init_events)
        for segment in self.segments:
            trace.ros_events.extend(segment.ros_events)
            trace.sched_events.extend(segment.sched_events)
            trace.wakeup_events.extend(segment.wakeup_events)
        if self.segments:
            trace.start_ts = self.segments[0].start_ts
            trace.stop_ts = self.segments[-1].stop_ts
        return trace.sort()


class TraceDatabase:
    """Stores traces from many runs/sessions (the Fig. 2 database)."""

    def __init__(self) -> None:
        self._traces: Dict[str, Trace] = {}

    def add(self, run_id: str, trace: Trace) -> None:
        if run_id in self._traces:
            raise ValueError(f"run {run_id!r} already stored")
        self._traces[run_id] = trace

    def get(self, run_id: str) -> Trace:
        return self._traces[run_id]

    def run_ids(self) -> List[str]:
        return sorted(self._traces)

    def traces(self) -> List[Trace]:
        return [self._traces[k] for k in self.run_ids()]

    def merged(self) -> Trace:
        return Trace.merge(self.traces())

    def __len__(self) -> int:
        return len(self._traces)

    def to_dict(self) -> Dict[str, Any]:
        return {run_id: trace.to_dict() for run_id, trace in self._traces.items()}

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "TraceDatabase":
        db = TraceDatabase()
        for run_id, trace_raw in raw.items():
            db.add(run_id, Trace.from_dict(trace_raw))
        return db

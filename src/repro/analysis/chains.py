"""Chain enumeration over the synthesized timing model.

A *computation chain* is a source-to-sink path in the DAG (e.g. LIDAR
driver to pose output).  Chains are the unit of analysis for the
response-time and latency techniques the paper's models feed ([1]-[5]);
the per-caller service replication of Sec. IV exists precisely so that
chain enumeration does not produce spurious caller-crossing paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.dag import TimingDag


@dataclass(frozen=True)
class Chain:
    """One source-to-sink path."""

    keys: tuple

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def source(self) -> str:
        return self.keys[0]

    @property
    def sink(self) -> str:
        return self.keys[-1]

    def contains(self, key: str) -> bool:
        return key in self.keys

    def describe(self, dag: TimingDag) -> str:
        return " -> ".join(dag.vertex(k).label() for k in self.keys)


def enumerate_chains(
    dag: TimingDag,
    sources: Optional[Sequence[str]] = None,
    sinks: Optional[Sequence[str]] = None,
    max_chains: int = 10_000,
) -> List[Chain]:
    """All simple source->sink paths (DFS over the validated DAG)."""
    dag.validate()
    source_keys = list(sources) if sources else [v.key for v in dag.sources()]
    sink_keys = set(sinks) if sinks else {v.key for v in dag.sinks()}
    chains: List[Chain] = []

    def walk(path: List[str]) -> None:
        if len(chains) >= max_chains:
            raise ValueError(f"more than {max_chains} chains; raise max_chains")
        key = path[-1]
        if key in sink_keys:
            # A sink terminates the chain even when the vertex still has
            # successors: explicit ``sinks=`` means "analyze up to here".
            # (Graph sinks have no successors, so the default behavior
            # is unchanged.)
            chains.append(Chain(keys=tuple(path)))
            return
        for nxt in sorted(dag.successors(key), key=lambda v: v.key):
            walk(path + [nxt.key])

    for source in sorted(source_keys):
        walk([source])
    return chains


def chain_wcet(dag: TimingDag, chain: Chain) -> int:
    """Sum of measured WCETs along the chain (AND junctions are free)."""
    return sum(dag.vertex(k).exec_stats.mwcet for k in chain.keys)


def chain_acet(dag: TimingDag, chain: Chain) -> float:
    return sum(dag.vertex(k).exec_stats.macet for k in chain.keys)


def chains_through(dag: TimingDag, key: str) -> List[Chain]:
    """Chains passing through a given vertex -- the count the paper uses
    to show why a shared-service vertex is wrong (n x n chains)."""
    return [c for c in enumerate_chains(dag) if c.contains(key)]


def format_chains(dag: TimingDag, chains: Sequence[Chain]) -> str:
    lines = []
    for chain in chains:
        wcet_ms = chain_wcet(dag, chain) / 1e6
        lines.append(f"{chain.describe(dag)}   (sum WCET {wcet_ms:.2f} ms)")
    return "\n".join(lines)

"""Chain response-time bounds on the synthesized model.

The synthesized DAG is designed to "serve as an input for analysis and
optimization by, e.g., [1]-[5]" (Sec. I).  This module implements a
compositional bound in the style of Casini et al. [1], adapted to the
model this library produces and documented accordingly:

* each node runs a single-threaded, non-preemptive-between-callbacks
  executor, so a callback instance can be delayed by (a) one
  in-flight callback of the same node (blocking) and (b) one pending
  instance of every other callback of its node (a polling-point round);
* per-callback response bound: ``R = C + max_other + sum_others`` using
  measured WCETs;
* chain bound: sum of per-callback bounds plus per-hop communication
  latency.

This is intentionally the *simple* member of the analysis family: it is
safe for the executor model above when every interfering callback has
at most one pending instance per round (utilization below 1 per node),
which the feasibility check enforces.  It demonstrates that the
synthesized models are directly consumable by model-based analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.dag import TimingDag
from .chains import Chain
from .load import node_loads


class AnalysisError(ValueError):
    """The model violates an assumption of the bound."""


@dataclass(frozen=True)
class CallbackBound:
    key: str
    wcet: int
    blocking: int
    interference: int

    @property
    def response_bound(self) -> int:
        return self.wcet + self.blocking + self.interference


def callback_response_bound(dag: TimingDag, key: str) -> CallbackBound:
    """Bound one callback's response time inside its node's executor."""
    vertex = dag.vertex(key)
    if vertex.is_and_junction:
        return CallbackBound(key=key, wcet=0, blocking=0, interference=0)
    siblings = [
        v
        for v in dag.find_vertices(node=vertex.node)
        if v.key != key and not v.is_and_junction
    ]
    wcets = [s.exec_stats.mwcet for s in siblings]
    blocking = max(wcets, default=0)  # one in-flight callback
    interference = sum(wcets)  # one pending instance each per round
    return CallbackBound(
        key=key,
        wcet=vertex.exec_stats.mwcet,
        blocking=blocking,
        interference=interference,
    )


def chain_response_bound(
    dag: TimingDag,
    chain: Chain,
    comm_latency_ns: int = 0,
    check_feasibility: bool = True,
) -> int:
    """End-to-end response-time bound for one chain.

    ``comm_latency_ns`` is the per-hop DDS latency bound (measured, e.g.
    with :func:`repro.analysis.latency.communication_latencies`).
    """
    if check_feasibility:
        assert_feasible(dag)
    total = 0
    for key in chain.keys:
        total += callback_response_bound(dag, key).response_bound
    total += comm_latency_ns * max(0, len(chain.keys) - 1)
    return total


def assert_feasible(dag: TimingDag) -> Dict[str, float]:
    """Check each node's executor demand stays below one core."""
    loads = node_loads(dag)
    overloaded = {node: load for node, load in loads.items() if load >= 1.0}
    if overloaded:
        raise AnalysisError(
            f"executor demand >= 100% for nodes: "
            f"{ {k: round(v, 2) for k, v in overloaded.items()} }"
        )
    return loads


def format_bounds(dag: TimingDag, chains: Sequence[Chain], comm_latency_ns: int = 0) -> str:
    lines = [f"{'chain':<72} {'bound (ms)':>10}"]
    for chain in chains:
        bound = chain_response_bound(dag, chain, comm_latency_ns)
        lines.append(f"{chain.describe(dag):<72} {bound / 1e6:>10.2f}")
    return "\n".join(lines)

"""Processor-load analysis and core-binding exploration.

Sec. VI motivates the measurements with deployment questions: the most
expensive AVP callback (cb2) averages 27 % of a core at 10 Hz, and such
numbers drive "balancing load across processor cores or keeping the
load below a certain threshold while determining core bindings of ROS2
nodes".  This module computes per-callback and per-node loads from the
synthesized model and provides a first-fit-decreasing binding heuristic
plus a feasibility check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..core.dag import TimingDag
from ..core.stats import utilization


@dataclass(frozen=True)
class CallbackLoad:
    """Average processor share of one callback."""

    key: str
    node: str
    load: float  # mACET / period

    def percent(self) -> float:
        return 100.0 * self.load


def callback_loads(dag: TimingDag) -> List[CallbackLoad]:
    """Per-callback average load, for callbacks with an estimable rate.

    The invocation rate of any callback -- not only timers -- is
    estimated from its observed start times.
    """
    loads: List[CallbackLoad] = []
    for vertex in dag.vertices():
        if vertex.is_and_junction:
            continue
        period = vertex.period_ns
        share = utilization(vertex.exec_stats, period)
        if share is not None:
            loads.append(CallbackLoad(key=vertex.key, node=vertex.node, load=share))
    return sorted(loads, key=lambda c: c.load, reverse=True)


def node_loads(dag: TimingDag) -> Dict[str, float]:
    """Total average load per ROS2 node (its executor thread's demand)."""
    totals: Dict[str, float] = {}
    for load in callback_loads(dag):
        totals[load.node] = totals.get(load.node, 0.0) + load.load
    return totals


def check_binding(
    dag: TimingDag,
    binding: Mapping[str, int],
    num_cpus: int,
    threshold: float = 1.0,
) -> Dict[int, float]:
    """Per-CPU load for a node->CPU binding; raises if any CPU exceeds
    ``threshold`` or a node is unbound."""
    loads = node_loads(dag)
    per_cpu: Dict[int, float] = {cpu: 0.0 for cpu in range(num_cpus)}
    for node, load in loads.items():
        if node not in binding:
            raise ValueError(f"node {node!r} has no CPU binding")
        cpu = binding[node]
        if not 0 <= cpu < num_cpus:
            raise ValueError(f"binding of {node!r} to CPU {cpu} out of range")
        per_cpu[cpu] += load
    overloaded = {cpu: l for cpu, l in per_cpu.items() if l > threshold}
    if overloaded:
        raise ValueError(f"CPUs over {threshold:.0%} load: {overloaded}")
    return per_cpu


def suggest_binding(
    dag: TimingDag, num_cpus: int, threshold: float = 0.8
) -> Dict[str, int]:
    """First-fit-decreasing node-to-core assignment under a load cap.

    A simple version of the deployment optimization the paper motivates;
    raises when no assignment keeps every CPU below ``threshold``.
    """
    if num_cpus < 1:
        raise ValueError("need at least one CPU")
    loads = sorted(node_loads(dag).items(), key=lambda kv: kv[1], reverse=True)
    per_cpu = [0.0] * num_cpus
    binding: Dict[str, int] = {}
    for node, load in loads:
        best: Optional[int] = None
        for cpu in range(num_cpus):
            if per_cpu[cpu] + load <= threshold:
                best = cpu
                break
        if best is None:
            raise ValueError(
                f"cannot place {node!r} ({load:.0%}) under a "
                f"{threshold:.0%} per-CPU cap with {num_cpus} CPUs"
            )
        binding[node] = best
        per_cpu[best] += load
    return binding


def format_loads(dag: TimingDag) -> str:
    """Report text: callback loads (the paper's '27 % for cb2' figure)."""
    lines = [f"{'callback':<42} {'node':<30} {'load':>7}"]
    for load in callback_loads(dag):
        lines.append(f"{load.key:<42} {load.node:<30} {load.percent():>6.1f}%")
    return "\n".join(lines)

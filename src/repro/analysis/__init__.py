"""Downstream consumers of the synthesized timing model: chain
enumeration, end-to-end latency / waiting-time measurement, processor
load + core-binding exploration, and response-time bounds."""

from .chains import (
    Chain,
    chain_acet,
    chain_wcet,
    chains_through,
    enumerate_chains,
    format_chains,
)
from .jitter import (
    ActivationModel,
    ResponseJitter,
    activation_model,
    activation_models,
    format_activations,
    response_jitter,
)
from .latency import (
    ChainLatency,
    WaitingTime,
    communication_latencies,
    measure_chain_latencies,
    measure_waiting_times,
)
from .load import (
    CallbackLoad,
    callback_loads,
    check_binding,
    format_loads,
    node_loads,
    suggest_binding,
)
from .response_time import (
    AnalysisError,
    CallbackBound,
    assert_feasible,
    callback_response_bound,
    chain_response_bound,
    format_bounds,
)

__all__ = [
    "Chain",
    "chain_acet",
    "chain_wcet",
    "chains_through",
    "enumerate_chains",
    "format_chains",
    "ActivationModel",
    "ResponseJitter",
    "activation_model",
    "activation_models",
    "format_activations",
    "response_jitter",
    "ChainLatency",
    "WaitingTime",
    "communication_latencies",
    "measure_chain_latencies",
    "measure_waiting_times",
    "CallbackLoad",
    "callback_loads",
    "check_binding",
    "format_loads",
    "node_loads",
    "suggest_binding",
    "AnalysisError",
    "CallbackBound",
    "assert_feasible",
    "callback_response_bound",
    "chain_response_bound",
    "format_bounds",
]

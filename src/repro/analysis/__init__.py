"""Downstream consumers of the synthesized timing model: chain
enumeration, end-to-end latency / waiting-time measurement, processor
load + core-binding exploration, and response-time bounds -- over
in-memory traces/models or streamed out-of-core from a trace store
(:mod:`repro.analysis.store`)."""

from .chains import (
    Chain,
    chain_acet,
    chain_wcet,
    chains_through,
    enumerate_chains,
    format_chains,
)
from .jitter import (
    ActivationModel,
    ResponseJitter,
    activation_model,
    activation_models,
    format_activations,
    response_jitter,
)
from .latency import (
    ChainLatency,
    LatencyIndex,
    WaitingTime,
    chain_latencies,
    communication_latencies,
    measure_chain_latencies,
    measure_waiting_times,
    topic_latencies,
    waiting_times,
)
from .load import (
    CallbackLoad,
    callback_loads,
    check_binding,
    format_loads,
    node_loads,
    suggest_binding,
)
from .response_time import (
    AnalysisError,
    CallbackBound,
    assert_feasible,
    callback_response_bound,
    chain_response_bound,
    format_bounds,
)
from .store import (
    StoreAnalysis,
    activation_models_from_store,
    callback_loads_from_store,
    communication_latencies_from_store,
    enumerate_chains_from_store,
    latency_index_from_store,
    measure_chain_latencies_from_store,
    measure_waiting_times_from_store,
    node_loads_from_store,
)

__all__ = [
    "Chain",
    "chain_acet",
    "chain_wcet",
    "chains_through",
    "enumerate_chains",
    "format_chains",
    "ActivationModel",
    "ResponseJitter",
    "activation_model",
    "activation_models",
    "format_activations",
    "response_jitter",
    "ChainLatency",
    "LatencyIndex",
    "WaitingTime",
    "chain_latencies",
    "communication_latencies",
    "measure_chain_latencies",
    "measure_waiting_times",
    "topic_latencies",
    "waiting_times",
    "StoreAnalysis",
    "activation_models_from_store",
    "callback_loads_from_store",
    "communication_latencies_from_store",
    "enumerate_chains_from_store",
    "latency_index_from_store",
    "measure_chain_latencies_from_store",
    "measure_waiting_times_from_store",
    "node_loads_from_store",
    "CallbackLoad",
    "callback_loads",
    "check_binding",
    "format_loads",
    "node_loads",
    "suggest_binding",
    "AnalysisError",
    "CallbackBound",
    "assert_feasible",
    "callback_response_bound",
    "chain_response_bound",
    "format_bounds",
]

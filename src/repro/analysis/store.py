"""Out-of-core analysis straight from a trace store.

The store-backed sibling of the in-memory analysis entry points: every
report the ``analysis`` package computes over a single materialized
:class:`~repro.tracing.session.Trace` or synthesized model is available
here over a :class:`~repro.store.database.TraceStore`, the way PRs 3-5
made synthesis itself stream out-of-core.

Two data paths, mirroring the pipeline split:

* **Model-based analyses** (chains, activation/jitter models, loads,
  response bounds) consume the timing DAG, so the store path is
  :func:`~repro.store.synthesis.synthesize_from_store` -- including its
  PID-shard planning and multi-process fan-out (``jobs``) -- followed by
  the unchanged in-memory analysis.  The synthesized model is pinned
  byte-identical to the in-memory pipeline, so these reports are too.
* **Trace-based analyses** (chain latency, waiting time, per-topic DDS
  latency) consume raw events.  :func:`latency_index_from_store` feeds
  :class:`~repro.analysis.latency.LatencyIndex` from the same columnar
  ``walk_rows`` streams the Alg. 1 store walk uses -- time-disjoint runs
  concatenate, overlapping runs k-way merge on the ``(ts, run, row)``
  int prefix -- so no merged :class:`Trace` and no
  :class:`~repro.tracing.events.TraceEvent` objects are ever
  materialized, and the row order equals ``Trace.merge`` order, making
  results value-identical to the in-memory analyses
  (``tests/test_analysis_store.py`` pins all 7 registry scenarios).

:class:`StoreAnalysis` bundles both paths behind one lazily-caching
handle (one synthesis, one latency index, any number of reports) -- the
engine behind ``repro analyze``.
"""

from __future__ import annotations

from heapq import merge as _heap_merge
from operator import itemgetter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.dag import TimingDag
from ..core.pipeline import STRATEGY_MERGE_TRACES
from ..store.database import StoreLike, as_store
from ..store.index import _runs_are_time_ordered
from ..store.synthesis import synthesize_from_store
from .chains import Chain, enumerate_chains
from .jitter import ActivationModel, activation_models
from .latency import (
    ChainLatency,
    LatencyIndex,
    WaitingTime,
    chain_latencies,
    topic_latencies,
    waiting_times,
)
from .load import CallbackLoad, callback_loads, node_loads


def _store_rows(
    readers: Sequence, pids: Optional[frozenset] = None
) -> Iterator[Tuple[int, int, int, Optional[dict]]]:
    """Chronological ``(ts, pid, code, payload)`` rows over stored runs.

    Reuses the segments' ``walk_rows`` columns: payloads decode only for
    the ID-carrying rows, and ordering matches ``Trace.merge`` exactly
    (ties keep run-id order via the ``(ts, order, row)`` int prefix).
    """
    if _runs_are_time_ordered(readers):
        for order, reader in enumerate(readers):
            for ts, _order, _row, pid, code, aux in reader.walk_rows(order):
                if pids is None or pid in pids:
                    yield ts, pid, code, aux
        return
    streams = [reader.walk_rows(order) for order, reader in enumerate(readers)]
    rows = streams[0] if len(streams) == 1 else _heap_merge(*streams)
    for ts, _order, _row, pid, code, aux in rows:
        if pids is None or pid in pids:
            yield ts, pid, code, aux


def latency_index_from_store(
    store: StoreLike,
    pids: Optional[Iterable[int]] = None,
    run_ids: Optional[Sequence[str]] = None,
) -> LatencyIndex:
    """Build a :class:`LatencyIndex` by streaming a store's segments.

    ``pids`` restricts the analysis to those nodes' events (takes,
    writes and windows of other PIDs are then invisible, exactly as if
    the in-memory trace had been filtered before indexing).  ``run_ids``
    restricts it to a frozen run list in the given order -- how a live
    service snapshot analyzes exactly its retained runs while newer
    segments keep landing in the same directory.
    """
    resolved = as_store(store)
    if run_ids is None:
        readers = resolved.readers()
    else:
        readers = [resolved.open(run_id) for run_id in run_ids]
    wanted = None if pids is None else frozenset(pids)
    # Two int columns per segment instead of SchedWakeup objects (on v3
    # the other three wakeup streams never inflate); heapq.merge breaks
    # ties in iterator order, so the merged (ts, pid) sequence is
    # exactly the object merge's.
    wakeups = (
        (ts, pid)
        for ts, pid in _heap_merge(
            *(reader.wakeup_ts_pid_rows() for reader in readers),
            key=itemgetter(0),
        )
        if wanted is None or pid in wanted
    )
    return LatencyIndex(_store_rows(readers, wanted), wakeups)


class StoreAnalysis:
    """One analysis handle over a trace store: synthesize once, stream
    the raw events once, answer any number of analysis queries.

    Parameters mirror :func:`synthesize_from_store`; ``jobs`` shards
    the synthesis across worker processes with the store layer's
    PID-shard planning.
    """

    def __init__(
        self,
        store: StoreLike,
        pids: Optional[Iterable[int]] = None,
        jobs: int = 1,
        split_services: bool = True,
        model_sync: bool = True,
        strategy: str = STRATEGY_MERGE_TRACES,
    ):
        self.store = as_store(store)
        self.pids = None if pids is None else sorted(pids)
        self.jobs = jobs
        self.split_services = split_services
        self.model_sync = model_sync
        self.strategy = strategy
        self._dag: Optional[TimingDag] = None
        self._index: Optional[LatencyIndex] = None

    @property
    def dag(self) -> TimingDag:
        """The synthesized timing model (computed once, out-of-core)."""
        if self._dag is None:
            self._dag = synthesize_from_store(
                self.store,
                pids=self.pids,
                jobs=self.jobs,
                split_services=self.split_services,
                model_sync=self.model_sync,
                strategy=self.strategy,
            )
        return self._dag

    @property
    def index(self) -> LatencyIndex:
        """The streamed latency index (built once)."""
        if self._index is None:
            self._index = latency_index_from_store(self.store, pids=self.pids)
        return self._index

    # -- model-based analyses ---------------------------------------------

    def chains(
        self,
        sources: Optional[Sequence[str]] = None,
        sinks: Optional[Sequence[str]] = None,
        max_chains: int = 10_000,
    ) -> List[Chain]:
        return enumerate_chains(
            self.dag, sources=sources, sinks=sinks, max_chains=max_chains
        )

    def activation_models(self) -> List[ActivationModel]:
        return activation_models(self.dag)

    def callback_loads(self) -> List[CallbackLoad]:
        return callback_loads(self.dag)

    def node_loads(self) -> Dict[str, float]:
        return node_loads(self.dag)

    # -- trace-based analyses ---------------------------------------------

    def chain_latencies(
        self, topics: Sequence[str], max_instances: Optional[int] = None
    ) -> List[ChainLatency]:
        return chain_latencies(self.index, topics, max_instances)

    def waiting_times(self, pid: int) -> List[WaitingTime]:
        return waiting_times(self.index, pid)

    def communication_latencies(self, topic: str) -> List[int]:
        return topic_latencies(self.index, topic)


# -- one-shot functional front ends ---------------------------------------


def enumerate_chains_from_store(
    store: StoreLike,
    sources: Optional[Sequence[str]] = None,
    sinks: Optional[Sequence[str]] = None,
    pids: Optional[Iterable[int]] = None,
    jobs: int = 1,
) -> List[Chain]:
    return StoreAnalysis(store, pids=pids, jobs=jobs).chains(
        sources=sources, sinks=sinks
    )


def activation_models_from_store(
    store: StoreLike, pids: Optional[Iterable[int]] = None, jobs: int = 1
) -> List[ActivationModel]:
    return StoreAnalysis(store, pids=pids, jobs=jobs).activation_models()


def callback_loads_from_store(
    store: StoreLike, pids: Optional[Iterable[int]] = None, jobs: int = 1
) -> List[CallbackLoad]:
    return StoreAnalysis(store, pids=pids, jobs=jobs).callback_loads()


def node_loads_from_store(
    store: StoreLike, pids: Optional[Iterable[int]] = None, jobs: int = 1
) -> Dict[str, float]:
    return StoreAnalysis(store, pids=pids, jobs=jobs).node_loads()


def measure_chain_latencies_from_store(
    store: StoreLike,
    topics: Sequence[str],
    max_instances: Optional[int] = None,
    pids: Optional[Iterable[int]] = None,
) -> List[ChainLatency]:
    return chain_latencies(
        latency_index_from_store(store, pids=pids), topics, max_instances
    )


def measure_waiting_times_from_store(
    store: StoreLike, pid: int
) -> List[WaitingTime]:
    return waiting_times(latency_index_from_store(store), pid)


def communication_latencies_from_store(store: StoreLike, topic: str) -> List[int]:
    return topic_latencies(latency_index_from_store(store), topic)

"""Activation and response-time jitter analysis.

Beyond the mBCET/mACET/mWCET triple, timing analyses ([2], [4]) need
activation models: how periodic is a timer really, how bursty is a
subscriber's activation.  This module derives those from the start
times the synthesized model already carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.dag import DagVertex, TimingDag
from ..core.stats import estimate_period


@dataclass(frozen=True)
class ActivationModel:
    """Periodic-with-jitter activation description of one callback."""

    key: str
    count: int
    period_ns: Optional[int]
    #: max |actual gap - period| over consecutive activations
    jitter_ns: Optional[int]
    #: min observed inter-arrival gap (sporadic minimum distance)
    min_gap_ns: Optional[int]
    max_gap_ns: Optional[int]

    @property
    def relative_jitter(self) -> Optional[float]:
        if self.period_ns in (None, 0) or self.jitter_ns is None:
            return None
        return self.jitter_ns / self.period_ns


def activation_model(vertex: DagVertex) -> ActivationModel:
    """Derive the activation model of one callback from its start times."""
    starts = np.sort(np.asarray(vertex.start_times, dtype=np.int64))
    if starts.size < 2:
        return ActivationModel(
            key=vertex.key,
            count=int(starts.size),
            period_ns=None,
            jitter_ns=None,
            min_gap_ns=None,
            max_gap_ns=None,
        )
    gaps = np.diff(starts)
    period = estimate_period(vertex.start_times)
    jitter = int(np.max(np.abs(gaps - period))) if period else None
    return ActivationModel(
        key=vertex.key,
        count=int(starts.size),
        period_ns=period,
        jitter_ns=jitter,
        min_gap_ns=int(gaps.min()),
        max_gap_ns=int(gaps.max()),
    )


def activation_models(dag: TimingDag) -> List[ActivationModel]:
    """Activation models for every measured callback in the DAG."""
    return [
        activation_model(vertex)
        for vertex in sorted(dag.vertices(), key=lambda v: v.key)
        if not vertex.is_and_junction and vertex.start_times
    ]


@dataclass(frozen=True)
class ResponseJitter:
    """Response-time spread of one callback (start-to-end wall clock)."""

    key: str
    count: int
    best_ns: int
    mean_ns: float
    worst_ns: int

    @property
    def spread_ns(self) -> int:
        return self.worst_ns - self.best_ns


def response_jitter(vertex: DagVertex) -> Optional[ResponseJitter]:
    if not vertex.response_times:
        return None
    arr = np.asarray(vertex.response_times, dtype=np.int64)
    return ResponseJitter(
        key=vertex.key,
        count=int(arr.size),
        best_ns=int(arr.min()),
        mean_ns=float(arr.mean()),
        worst_ns=int(arr.max()),
    )


def format_activations(dag: TimingDag) -> str:
    """Report: period / jitter / gap range per callback."""
    header = (
        f"{'callback':<42} {'n':>5} {'period':>9} {'jitter':>9} "
        f"{'min gap':>9} {'max gap':>9}"
    )
    lines = [header, "-" * len(header)]
    for model in activation_models(dag):
        def fmt(value):
            return "-" if value is None else f"{value / 1e6:.2f}ms"

        lines.append(
            f"{model.key:<42} {model.count:>5} {fmt(model.period_ns):>9} "
            f"{fmt(model.jitter_ns):>9} {fmt(model.min_gap_ns):>9} "
            f"{fmt(model.max_gap_ns):>9}"
        )
    return "\n".join(lines)

"""End-to-end latency and waiting-time measurement from traces.

Implements the extensions sketched in the paper's Sec. VII:

* **Data-flow latency** -- the framework logs source timestamps on both
  the publisher (P16) and subscriber (P6) side, so a datum can be
  followed through a computation chain: each hop matches a ``dds_write``
  to the ``take`` with the same (topic, srcTS), then follows the
  consuming callback instance to its next write.  The end-to-end latency
  of a chain instance is the time from the initial write to the end of
  the final callback.
* **Waiting time** -- with ``sched_wakeup`` recording enabled
  (``TracingSession(record_wakeups=True)``), the time between a node
  thread's wakeup and the start of the dispatched callback.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..tracing.events import (
    P6_TAKE,
    P16_DDS_WRITE,
    TraceEvent,
)
from ..tracing.session import Trace


@dataclass(frozen=True)
class ChainLatency:
    """One traced journey of a datum through a topic chain."""

    start_ts: int  # initial dds_write
    end_ts: int  # end of the final consuming callback
    hops: int

    @property
    def latency_ns(self) -> int:
        return self.end_ts - self.start_ts


class _InstanceIndex:
    """Per-PID callback-instance windows, for locating the instance that
    contains a given event and the writes it performed."""

    def __init__(self, trace: Trace):
        self._windows: Dict[int, List[Tuple[int, int]]] = {}
        self._writes: Dict[int, List[TraceEvent]] = {}
        open_start: Dict[int, int] = {}
        for event in trace.ros_events:
            pid = event.pid
            if event.is_cb_start():
                open_start[pid] = event.ts
            elif event.is_cb_end() and pid in open_start:
                self._windows.setdefault(pid, []).append((open_start.pop(pid), event.ts))
            elif event.probe == P16_DDS_WRITE:
                self._writes.setdefault(pid, []).append(event)

    def window_containing(self, pid: int, ts: int) -> Optional[Tuple[int, int]]:
        windows = self._windows.get(pid, [])
        starts = [w[0] for w in windows]
        i = bisect.bisect_right(starts, ts) - 1
        if i >= 0 and windows[i][0] <= ts <= windows[i][1]:
            return windows[i]
        return None

    def writes_in(self, pid: int, window: Tuple[int, int], topic: str) -> List[TraceEvent]:
        return [
            w
            for w in self._writes.get(pid, [])
            if window[0] <= w.ts <= window[1] and w.get("topic") == topic
        ]


def measure_chain_latencies(
    trace: Trace, topics: Sequence[str], max_instances: Optional[int] = None
) -> List[ChainLatency]:
    """Follow data through ``topics`` (in order) and measure latencies.

    ``topics[0]`` is the chain's entry topic; each subsequent topic must
    be published from within the callback consuming the previous one.
    Incomplete journeys (data dropped by QoS, run boundary) are skipped.
    """
    if not topics:
        raise ValueError("need at least one topic")
    takes_by_key: Dict[Tuple[str, int], List[TraceEvent]] = {}
    for event in trace.ros_events:
        if event.probe == P6_TAKE:
            key = (event.get("topic"), event.get("src_ts"))
            takes_by_key.setdefault(key, []).append(event)
    index = _InstanceIndex(trace)
    latencies: List[ChainLatency] = []
    first_writes = [
        e
        for e in trace.ros_events
        if e.probe == P16_DDS_WRITE and e.get("topic") == topics[0]
    ]
    for write in first_writes:
        if max_instances is not None and len(latencies) >= max_instances:
            break
        journey_end = _follow(write, topics, 0, takes_by_key, index)
        if journey_end is not None:
            latencies.append(
                ChainLatency(start_ts=write.ts, end_ts=journey_end, hops=len(topics))
            )
    return latencies


def _follow(
    write: TraceEvent,
    topics: Sequence[str],
    hop: int,
    takes_by_key: Dict[Tuple[str, int], List[TraceEvent]],
    index: _InstanceIndex,
) -> Optional[int]:
    """Recursive hop: find the take for this write, then the next write
    inside the consuming instance.  Returns the final instance end ts."""
    takes = takes_by_key.get((topics[hop], write.get("src_ts")), [])
    for take in takes:
        window = index.window_containing(take.pid, take.ts)
        if window is None:
            continue
        if hop == len(topics) - 1:
            return window[1]
        next_writes = index.writes_in(take.pid, window, topics[hop + 1])
        for next_write in next_writes:
            result = _follow(next_write, topics, hop + 1, takes_by_key, index)
            if result is not None:
                return result
    return None


@dataclass(frozen=True)
class WaitingTime:
    """Wakeup-to-dispatch interval for one callback instance."""

    pid: int
    wakeup_ts: int
    start_ts: int

    @property
    def waiting_ns(self) -> int:
        return self.start_ts - self.wakeup_ts


def measure_waiting_times(trace: Trace, pid: int) -> List[WaitingTime]:
    """Waiting time of each callback instance of a node (Sec. VII).

    Pairs each CB-start event with the most recent preceding
    ``sched_wakeup`` of the node's thread.  Requires the trace to have
    been collected with ``record_wakeups=True``.
    """
    wakeups = [w.ts for w in trace.wakeup_events if w.pid == pid]
    if not wakeups:
        return []
    result: List[WaitingTime] = []
    for event in trace.ros_events:
        if event.pid != pid or not event.is_cb_start():
            continue
        i = bisect.bisect_right(wakeups, event.ts) - 1
        if i >= 0:
            result.append(
                WaitingTime(pid=pid, wakeup_ts=wakeups[i], start_ts=event.ts)
            )
    return result


def communication_latencies(trace: Trace, topic: str) -> List[int]:
    """Per-sample DDS latency on one topic: take.ts - write src_ts."""
    writes = {
        e.get("src_ts")
        for e in trace.ros_events
        if e.probe == P16_DDS_WRITE and e.get("topic") == topic
    }
    return [
        e.ts - e.get("src_ts")
        for e in trace.ros_events
        if e.probe == P6_TAKE and e.get("topic") == topic and e.get("src_ts") in writes
    ]

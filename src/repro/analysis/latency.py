"""End-to-end latency and waiting-time measurement from traces.

Implements the extensions sketched in the paper's Sec. VII:

* **Data-flow latency** -- the framework logs source timestamps on both
  the publisher (P16) and subscriber (P6) side, so a datum can be
  followed through a computation chain: each hop matches a ``dds_write``
  to the ``take`` with the same (topic, srcTS), then follows the
  consuming callback instance to its next write.  The end-to-end latency
  of a chain instance is the time from the initial write to the end of
  the final callback.
* **Waiting time** -- with ``sched_wakeup`` recording enabled
  (``TracingSession(record_wakeups=True)``), the time between a node
  thread's wakeup and the start of the dispatched callback.

All three analyses run off one :class:`LatencyIndex`, built in a single
pass over a chronological row stream ``(ts, pid, code, payload)`` --
either adapted from an in-memory :class:`~repro.tracing.session.Trace`
(:meth:`LatencyIndex.from_trace`) or streamed straight from stored
segments without materializing a trace
(:func:`repro.analysis.store.latency_index_from_store`).  The row codes
are the integer probe codes of :mod:`repro.core.index`; ``payload`` is
only dereferenced for take (P6) and ``dds_write`` (P16) rows, matching
the aux contract of ``SegmentReader.walk_rows``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from operator import itemgetter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.index import (
    CODE_CB_END,
    CODE_CB_START,
    CODE_DDS_WRITE,
    CODE_OTHER,
    CODE_TAKE,
    PROBE_CODES,
    TopicKey,
)
from ..tracing.session import Trace

#: One hop record: (ts, topic, src_ts) of a dds_write, or (ts, src_ts)
#: in the per-topic views.
_WriteRow = Tuple[int, Optional[str], Optional[int]]


@dataclass(frozen=True)
class ChainLatency:
    """One traced journey of a datum through a topic chain."""

    start_ts: int  # initial dds_write
    end_ts: int  # end of the final consuming callback
    hops: int

    @property
    def latency_ns(self) -> int:
        return self.end_ts - self.start_ts


def _trace_rows(trace: Trace) -> Iterator[Tuple[int, int, int, Optional[dict]]]:
    """Adapt a loaded trace's ROS events to the index's row stream."""
    code_of = PROBE_CODES.get
    for event in trace.ros_events:
        # TraceEvent is a NamedTuple: ts=0, pid=1, probe=2, data=3.
        yield event[0], event[1], code_of(event[2], CODE_OTHER), event[3]


class LatencyIndex:
    """Single-pass lookup structures behind the latency analyses.

    Consumes any chronological ``(ts, pid, code, payload)`` row stream
    plus an optional ``(ts, pid)`` wakeup stream, and indexes:

    * per-PID callback-instance windows (CB start/end pairs), with the
      start array precomputed and windows defensively sorted so an
      unsorted input cannot silently break the bisect lookup;
    * per-PID and per-topic ``dds_write`` rows;
    * ``take`` rows keyed by the paper's (topic, srcTS) correlation key
      and grouped per topic -- all in stream order, so results are
      byte-identical to scanning the merged in-memory trace.
    """

    __slots__ = (
        "_windows",
        "_starts",
        "_writes",
        "_writes_by_topic",
        "_takes_by_key",
        "_takes_by_topic",
        "_cb_starts",
        "_wakeups",
    )

    def __init__(
        self,
        rows: Iterable[Tuple[int, int, int, Optional[dict]]],
        wakeups: Iterable[Tuple[int, int]] = (),
    ):
        self._windows: Dict[int, List[Tuple[int, int]]] = {}
        self._writes: Dict[int, List[_WriteRow]] = {}
        self._writes_by_topic: Dict[Optional[str], List[Tuple[int, Optional[int]]]] = {}
        self._takes_by_key: Dict[TopicKey, List[Tuple[int, int]]] = {}
        self._takes_by_topic: Dict[Optional[str], List[Tuple[int, Optional[int]]]] = {}
        self._cb_starts: Dict[int, List[int]] = {}
        open_start: Dict[int, int] = {}
        for ts, pid, code, payload in rows:
            if code == CODE_CB_START:
                open_start[pid] = ts
                self._cb_starts.setdefault(pid, []).append(ts)
            elif code == CODE_CB_END:
                start = open_start.pop(pid, None)
                if start is not None:
                    self._windows.setdefault(pid, []).append((start, ts))
            elif code == CODE_DDS_WRITE:
                topic = payload.get("topic")
                src_ts = payload.get("src_ts")
                self._writes.setdefault(pid, []).append((ts, topic, src_ts))
                self._writes_by_topic.setdefault(topic, []).append((ts, src_ts))
            elif code == CODE_TAKE:
                topic = payload.get("topic")
                src_ts = payload.get("src_ts")
                self._takes_by_key.setdefault((topic, src_ts), []).append((ts, pid))
                self._takes_by_topic.setdefault(topic, []).append((ts, src_ts))
        #: per-PID window start arrays, computed once -- lookups are a
        #: bisect, never a per-call list rebuild.
        self._starts: Dict[int, List[int]] = {}
        for pid, windows in self._windows.items():
            if any(
                windows[i][0] > windows[i + 1][0]
                for i in range(len(windows) - 1)
            ):
                windows.sort(key=itemgetter(0))
            self._starts[pid] = [w[0] for w in windows]
        self._wakeups: Dict[int, List[int]] = {}
        for ts, pid in wakeups:
            self._wakeups.setdefault(pid, []).append(ts)

    @classmethod
    def from_trace(cls, trace: Trace) -> "LatencyIndex":
        return cls(
            _trace_rows(trace),
            ((w.ts, w.pid) for w in trace.wakeup_events),
        )

    # -- lookups -----------------------------------------------------------

    def window_containing(self, pid: int, ts: int) -> Optional[Tuple[int, int]]:
        """The latest-starting callback window of ``pid`` containing
        ``ts`` (None when ``ts`` falls outside it)."""
        starts = self._starts.get(pid)
        if not starts:
            return None
        i = bisect.bisect_right(starts, ts) - 1
        if i >= 0:
            window = self._windows[pid][i]
            if window[0] <= ts <= window[1]:
                return window
        return None

    def writes_in(
        self, pid: int, window: Tuple[int, int], topic: str
    ) -> List[Tuple[int, Optional[int]]]:
        """(ts, src_ts) of the PID's writes on ``topic`` inside ``window``."""
        return [
            (ts, src_ts)
            for ts, write_topic, src_ts in self._writes.get(pid, [])
            if window[0] <= ts <= window[1] and write_topic == topic
        ]

    def writes_on(self, topic: str) -> List[Tuple[int, Optional[int]]]:
        """(ts, src_ts) of every write on ``topic``, in stream order."""
        return self._writes_by_topic.get(topic, [])

    def takes_for(
        self, topic: str, src_ts: Optional[int]
    ) -> List[Tuple[int, int]]:
        """(ts, pid) of the takes matching one (topic, srcTS) key."""
        return self._takes_by_key.get((topic, src_ts), [])

    def takes_on(self, topic: str) -> List[Tuple[int, Optional[int]]]:
        """(ts, src_ts) of every take on ``topic``, in stream order."""
        return self._takes_by_topic.get(topic, [])

    def cb_starts(self, pid: int) -> List[int]:
        """Start timestamps of the PID's callback instances."""
        return self._cb_starts.get(pid, [])

    def wakeups(self, pid: int) -> List[int]:
        """``sched_wakeup`` timestamps of the PID's thread."""
        return self._wakeups.get(pid, [])


def chain_latencies(
    index: LatencyIndex,
    topics: Sequence[str],
    max_instances: Optional[int] = None,
) -> List[ChainLatency]:
    """Follow data through ``topics`` (in order) over a built index.

    ``topics[0]`` is the chain's entry topic; each subsequent topic must
    be published from within the callback consuming the previous one.
    Incomplete journeys (data dropped by QoS, run boundary) are skipped.
    """
    if not topics:
        raise ValueError("need at least one topic")
    latencies: List[ChainLatency] = []
    for write_ts, src_ts in index.writes_on(topics[0]):
        if max_instances is not None and len(latencies) >= max_instances:
            break
        journey_end = _follow(src_ts, topics, 0, index)
        if journey_end is not None:
            latencies.append(
                ChainLatency(start_ts=write_ts, end_ts=journey_end, hops=len(topics))
            )
    return latencies


def measure_chain_latencies(
    trace: Trace, topics: Sequence[str], max_instances: Optional[int] = None
) -> List[ChainLatency]:
    """In-memory front end of :func:`chain_latencies`."""
    return chain_latencies(LatencyIndex.from_trace(trace), topics, max_instances)


def _follow(
    src_ts: Optional[int],
    topics: Sequence[str],
    hop: int,
    index: LatencyIndex,
) -> Optional[int]:
    """Recursive hop: find the take for this write, then the next write
    inside the consuming instance.  Returns the final instance end ts."""
    for take_ts, take_pid in index.takes_for(topics[hop], src_ts):
        window = index.window_containing(take_pid, take_ts)
        if window is None:
            continue
        if hop == len(topics) - 1:
            return window[1]
        for _, next_src_ts in index.writes_in(take_pid, window, topics[hop + 1]):
            result = _follow(next_src_ts, topics, hop + 1, index)
            if result is not None:
                return result
    return None


@dataclass(frozen=True)
class WaitingTime:
    """Wakeup-to-dispatch interval for one callback instance."""

    pid: int
    wakeup_ts: int
    start_ts: int

    @property
    def waiting_ns(self) -> int:
        return self.start_ts - self.wakeup_ts


def waiting_times(index: LatencyIndex, pid: int) -> List[WaitingTime]:
    """Waiting time of each callback instance of a node (Sec. VII).

    Pairs each CB-start event with the most recent preceding
    ``sched_wakeup`` of the node's thread.  Requires the trace to have
    been collected with ``record_wakeups=True``.
    """
    wakeups = index.wakeups(pid)
    if not wakeups:
        return []
    result: List[WaitingTime] = []
    for start_ts in index.cb_starts(pid):
        i = bisect.bisect_right(wakeups, start_ts) - 1
        if i >= 0:
            result.append(
                WaitingTime(pid=pid, wakeup_ts=wakeups[i], start_ts=start_ts)
            )
    return result


def measure_waiting_times(trace: Trace, pid: int) -> List[WaitingTime]:
    """In-memory front end of :func:`waiting_times`."""
    return waiting_times(LatencyIndex.from_trace(trace), pid)


def topic_latencies(index: LatencyIndex, topic: str) -> List[int]:
    """Per-sample DDS latency on one topic: take.ts - write src_ts."""
    written = {src_ts for _, src_ts in index.writes_on(topic)}
    return [
        ts - src_ts
        for ts, src_ts in index.takes_on(topic)
        if src_ts in written
    ]


def communication_latencies(trace: Trace, topic: str) -> List[int]:
    """In-memory front end of :func:`topic_latencies`."""
    return topic_latencies(LatencyIndex.from_trace(trace), topic)
